package campaign

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// TestLegacySpecCanonicalizesToScenarios is the schema-bridge golden
// test: a legacy adversaries/ks spec and its hand-written scenario-form
// equivalent canonicalize to the same spec, hash to the same spec hash
// and cache keys, and produce byte-identical artifacts.
func TestLegacySpecCanonicalizesToScenarios(t *testing.T) {
	legacy := Spec{
		Name:        "golden",
		Adversaries: []string{"random-tree", "k-leaves"},
		Ns:          []int{8, 16},
		Ks:          []int{2, 3},
		Trials:      4,
		Seed:        42,
	}
	scenario := Spec{
		Version: 2,
		Name:    "golden",
		Scenarios: []Scenario{
			{Adversary: "random-tree"},
			{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 3}}},
		},
		Ns:     []int{8, 16},
		Trials: 4,
		Seed:   42,
	}

	lc, err := legacy.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lc, sc) {
		t.Fatalf("canonical forms differ:\n%+v\nvs\n%+v", lc, sc)
	}
	wantScens := []Scenario{
		{Adversary: "random-tree"},
		{Adversary: "k-leaves", Params: map[string]any{"k": float64(2)}},
		{Adversary: "k-leaves", Params: map[string]any{"k": float64(3)}},
	}
	if !reflect.DeepEqual(lc.Scenarios, wantScens) {
		t.Errorf("canonical scenarios = %+v, want %+v", lc.Scenarios, wantScens)
	}
	if lc.Version != SpecVersion || lc.Adversaries != nil || lc.Ks != nil {
		t.Errorf("canonical spec keeps legacy fields: %+v", lc)
	}

	if SpecHash(legacy) != SpecHash(scenario) {
		t.Error("legacy and scenario forms hash to different spec hashes")
	}
	for _, probe := range []struct {
		adv  string
		n, k int
	}{{"random-tree", 8, -1}, {"k-leaves", 16, 2}, {"k-leaves", 8, 3}} {
		if cellKeyFor(t, legacy, probe.adv, probe.n, probe.k) != cellKeyFor(t, scenario, probe.adv, probe.n, probe.k) {
			t.Errorf("cache key for %s/n=%d/k=%d differs between forms", probe.adv, probe.n, probe.k)
		}
	}

	lo, err := RunSpec(context.Background(), legacy, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	so, err := RunSpec(context.Background(), scenario, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artifactBytes(t, lo), artifactBytes(t, so)) {
		t.Error("legacy-form artifact differs from scenario-form artifact")
	}
	// The canonical cell names keep the pre-v2 shape for the k families.
	if _, ok := CellByKey(lo.Cells, "k-leaves/n=16/k=2"); !ok {
		t.Errorf("expected cell k-leaves/n=16/k=2; cells: %+v", lo.Cells)
	}
}

// TestCanonicalIdempotent: canonicalizing a canonical spec is identity.
func TestCanonicalIdempotent(t *testing.T) {
	spec := detSpec()
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	again, err := canon.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canon, again) {
		t.Errorf("canonicalization not idempotent:\n%+v\nvs\n%+v", canon, again)
	}
}

// TestAxisExpansionCrossProduct: several axis-valued params expand to
// their cross product, first declared param outermost.
func TestAxisExpansionCrossProduct(t *testing.T) {
	grounds, err := expandScenario(Scenario{
		Adversary: "two-phase-path",
		Params:    map[string]any{"switch_at": []any{1, 2}, "prefix": []any{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, g := range grounds {
		got = append(got, g.canon)
	}
	want := []string{
		`two-phase-path{"prefix":3,"switch_at":1}`,
		`two-phase-path{"prefix":4,"switch_at":1}`,
		`two-phase-path{"prefix":3,"switch_at":2}`,
		`two-phase-path{"prefix":4,"switch_at":2}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("expansion = %v, want %v", got, want)
	}
}

// TestScenarioDefaultsFill: omitted params with defaults are filled into
// the canonical form, so the same grid spelled with and without explicit
// defaults shares identities.
func TestScenarioDefaultsFill(t *testing.T) {
	implicit, err := expandScenario(Scenario{Adversary: "two-phase-path"})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := expandScenario(Scenario{
		Adversary: "two-phase-path",
		Params:    map[string]any{"switch_at": 0, "prefix": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(implicit) != 1 || len(explicit) != 1 || implicit[0].canon != explicit[0].canon {
		t.Errorf("defaults not canonical: %v vs %v", implicit, explicit)
	}
}

// TestTwoPhasePathScenarioRuns: the multi-param built-in family runs
// through a campaign and achieves a plausible broadcast time.
func TestTwoPhasePathScenarioRuns(t *testing.T) {
	spec := Spec{
		Scenarios: []Scenario{{Adversary: "two-phase-path", Params: map[string]any{"switch_at": 4, "prefix": 4}}},
		Ns:        []int{8},
		Trials:    2,
		Seed:      1,
	}
	o, err := RunSpec(context.Background(), spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Failed != 0 {
		t.Fatalf("two-phase campaign failed: %v", o.Errors)
	}
	cell, ok := CellByKey(o.Cells, "two-phase-path/n=8/switch_at=4/prefix=4")
	if !ok {
		t.Fatalf("cell missing; cells: %+v", o.Cells)
	}
	// The schedule is deterministic, so every trial agrees; broadcast on
	// n=8 needs at least a handful of path rounds.
	if cell.Mean < 1 || cell.Min != cell.Max {
		t.Errorf("two-phase cell implausible: %+v", cell)
	}
}

// TestRegisterValidation: the registry rejects malformed and duplicate
// families.
func TestRegisterValidation(t *testing.T) {
	cases := map[string]Family{
		"empty name":      {New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil }},
		"nil constructor": {Name: "t-nil-ctor"},
		"dup family":      {Name: "random-tree", New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil }},
		"unnamed param": {Name: "t-unnamed", Params: []Param{{Kind: IntParam}},
			New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil }},
		"dup param": {Name: "t-dup-param", Params: []Param{{Name: "a", Kind: IntParam}, {Name: "a", Kind: IntParam}},
			New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil }},
		"bad kind": {Name: "t-bad-kind", Params: []Param{{Name: "a", Kind: "complex"}},
			New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil }},
		"bad default": {Name: "t-bad-default", Params: []Param{{Name: "a", Kind: IntParam, Default: "x"}},
			New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil }},
		"portfolio reserved": {Name: "t-portfolio", Portfolio: true,
			New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil }},
	}
	for name, f := range cases {
		if err := Register(f); err == nil {
			t.Errorf("%s: Register accepted %+v", name, f)
		}
	}
}

// TestRegisterNormalizesDefaults: Families() exposes registered defaults
// in canonical form (numbers as float64), without mutating the caller's
// Param slice.
func TestRegisterNormalizesDefaults(t *testing.T) {
	params := []Param{{Name: "d", Kind: IntParam, Default: 7}}
	if err := Register(Family{
		Name: "t-defaults", Params: params,
		New: func(int, Params, *rng.Source) (core.Adversary, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	f, ok := familyByName("t-defaults")
	if !ok {
		t.Fatal("family not registered")
	}
	if d, isFloat := f.Params[0].Default.(float64); !isFloat || d != 7 {
		t.Errorf("stored default = %#v, want float64(7)", f.Params[0].Default)
	}
	if _, stillInt := params[0].Default.(int); !stillInt {
		t.Errorf("Register mutated the caller's Param slice: %#v", params[0].Default)
	}
}

// TestTwoPhaseInfeasiblePrefixSkipped: a prefix longer than n skips that
// grid point (like k > n−1) instead of failing every trial at runtime.
func TestTwoPhaseInfeasiblePrefixSkipped(t *testing.T) {
	spec := Spec{
		Scenarios: []Scenario{{Adversary: "two-phase-path", Params: map[string]any{"prefix": 16}}},
		Ns:        []int{8, 32},
		Trials:    2,
		Seed:      1,
	}
	o, err := RunSpec(context.Background(), spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Failed != 0 || o.Jobs != 2 {
		t.Fatalf("infeasible prefix not skipped: jobs=%d failed=%d errors=%v", o.Jobs, o.Failed, o.Errors)
	}
	if _, ok := CellByKey(o.Cells, "two-phase-path/n=32/switch_at=0/prefix=16"); !ok {
		t.Errorf("feasible cell missing: %+v", o.Cells)
	}
}

// TestInfeasibleScenarioJobsError: a feasible-at-validate-time scenario
// whose construction fails at run time reports the error with the cell
// named, instead of panicking the worker.
func TestConstructionErrorNamesCell(t *testing.T) {
	if err := Register(Family{
		Name: "t-always-errors",
		New: func(int, Params, *rng.Source) (core.Adversary, error) {
			return nil, context.DeadlineExceeded // any error will do
		},
	}); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Scenarios: []Scenario{{Adversary: "t-always-errors"}}, Ns: []int{4}, Trials: 2, Seed: 1}
	o, err := RunSpec(context.Background(), spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Failed != 2 {
		t.Fatalf("failed = %d, want 2", o.Failed)
	}
	if !strings.Contains(o.Errors[0], "t-always-errors/n=4") {
		t.Errorf("construction error not cell-named: %q", o.Errors[0])
	}
}

// TestCustomFamilyFullServiceLayer registers a parameterized custom
// family through the open registry and drives it through the whole
// service stack: campaign run, content-addressed cache, checkpoint
// write + resume — with byte-identical artifacts throughout.
func TestCustomFamilyFullServiceLayer(t *testing.T) {
	// A "lazy-star" adversary: plays the star rooted at (round+offset) mod
	// n — broadcast completes in 1 round regardless, keeping the test fast
	// and the expected mean pinned.
	if err := Register(Family{
		Name:   "t-lazy-star",
		Doc:    "star rooted at (round+offset) mod n",
		Params: []Param{{Name: "offset", Kind: IntParam, Default: 0, Doc: "root offset"}},
		New: func(n int, p Params, _ *rng.Source) (core.Adversary, error) {
			offset := p.Int("offset")
			return adversary.Func(func(v core.View) *tree.Tree {
				s, err := tree.Star(v.N(), (v.Round()+offset)%v.N())
				if err != nil {
					return nil
				}
				return s
			}), nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	spec := Spec{
		Name:      "custom",
		Scenarios: []Scenario{{Adversary: "t-lazy-star", Params: map[string]any{"offset": []any{0, 1}}}},
		Ns:        []int{6, 9},
		Trials:    3,
		Seed:      7,
	}

	plain, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Failed != 0 || plain.Jobs != 2*2*3 {
		t.Fatalf("custom campaign wrong shape: %+v errors=%v", plain, plain.Errors)
	}
	cell, ok := CellByKey(plain.Cells, "t-lazy-star/n=6/offset=1")
	if !ok || cell.Mean != 1 {
		t.Fatalf("custom cell missing or wrong: %+v ok=%v", cell, ok)
	}
	want := artifactBytes(t, plain)

	// Cache round-trip: cold populates, warm serves everything.
	c := cache.NewMemory()
	if _, err := RunSpec(context.Background(), spec, Config{Cache: c}); err != nil {
		t.Fatal(err)
	}
	warm, err := RunSpec(context.Background(), spec, Config{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.Jobs || warm.Executed != 0 {
		t.Errorf("custom family not cacheable: hits/executed = %d/%d", warm.CacheHits, warm.Executed)
	}
	if !bytes.Equal(artifactBytes(t, warm), want) {
		t.Error("cached custom artifact differs")
	}

	// Checkpoint round-trip: record a full run, then resume from the file.
	path := filepath.Join(t.TempDir(), "custom.ckpt")
	cf, err := OpenCheckpointFile(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpec(context.Background(), spec, cf.Wire(Config{})); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeSpec(context.Background(), spec, cp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Reused != resumed.Jobs {
		t.Errorf("resume reused %d/%d jobs", resumed.Reused, resumed.Jobs)
	}
	if !bytes.Equal(artifactBytes(t, resumed), want) {
		t.Error("resumed custom artifact differs")
	}
}

// TestParseScenario covers both accepted command-line forms.
func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("random-tree")
	if err != nil || sc.Adversary != "random-tree" || sc.Params != nil {
		t.Errorf("bare name: %+v, %v", sc, err)
	}
	sc, err = ParseScenario(`{"adversary":"k-leaves","params":{"k":[2,4]}}`)
	if err != nil || sc.Adversary != "k-leaves" || sc.Params["k"] == nil {
		t.Errorf("JSON form: %+v, %v", sc, err)
	}
	for _, bad := range []string{"", "   ", `{"adversary":"x","bogus":1}`, `{"adversary":`} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) succeeded", bad)
		}
	}
}

// TestParseScenarioRejectsTrailingData pins the fix for the silent-drop
// bug: json.Decoder.Decode returns after one value, so a quoting slip
// like '{"adversary":"k-leaves"} {"adversary":"random-tree"}' used to
// parse clean and lose every scenario after the first.
func TestParseScenarioRejectsTrailingData(t *testing.T) {
	for _, bad := range []string{
		`{"adversary":"k-leaves"} {"adversary":"random-tree"}`,
		`{"adversary":"random-tree"}{"adversary":"random-path"}`,
		`{"adversary":"random-tree"} garbage`,
		`{"adversary":"random-tree"},`,
	} {
		if sc, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) = %+v, want trailing-data error", bad, sc)
		} else if !strings.Contains(err.Error(), "trailing") {
			t.Errorf("ParseScenario(%q) error %q does not name trailing data", bad, err)
		}
	}
	// Trailing whitespace stays fine.
	if _, err := ParseScenario(`{"adversary":"random-tree"}` + "  \n"); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

// TestStringParamSeparatorsRejected pins the identity-corruption fix: a
// string param value carrying a cell-key separator ('/', '='), a CSV
// comma, or a control character would corrupt cell display keys, CSV
// artifact rows, and checkpoint JSONL readability. Both spec expansion
// and registration-time defaults must reject them.
func TestStringParamSeparatorsRejected(t *testing.T) {
	if err := Register(Family{
		Name:   "string-param-probe",
		Doc:    "test-only family with a string param",
		Params: []Param{{Name: "mode", Kind: StringParam, Default: "greedy", Doc: "probe"}},
		New: func(n int, _ Params, _ *rng.Source) (core.Adversary, error) {
			return adversary.Static{Tree: tree.IdentityPath(n)}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"a/b", "a=b", "a,b", "a\nb", "a\tb", "\x00", "del\x7f"} {
		sc := Scenario{Adversary: "string-param-probe", Params: map[string]any{"mode": bad}}
		if _, err := expandScenario(sc); err == nil {
			t.Errorf("expandScenario accepted string param %q", bad)
		}
	}
	// Clean values (including spaces and unicode) still pass, and the
	// cell key they produce stays parseable.
	sc := Scenario{Adversary: "string-param-probe", Params: map[string]any{"mode": "fair game π"}}
	gs, err := expandScenario(sc)
	if err != nil {
		t.Fatalf("clean string param rejected: %v", err)
	}
	if got := gs[0].cellName(8); got != "string-param-probe/n=8/mode=fair game π" {
		t.Errorf("cell name = %q", got)
	}
	// Registration-time defaults go through the same gate.
	err = Register(Family{
		Name:   "string-param-bad-default",
		Doc:    "test-only family with a corrupt default",
		Params: []Param{{Name: "mode", Kind: StringParam, Default: "a/b", Doc: "probe"}},
		New: func(n int, _ Params, _ *rng.Source) (core.Adversary, error) {
			return adversary.Static{Tree: tree.IdentityPath(n)}, nil
		},
	})
	if err == nil {
		t.Error("Register accepted a separator-carrying string default")
	}
}

// TestFamiliesOrderStable: built-ins come first in declaration order, so
// the experiment portfolio and legacy expansion never reshuffle.
func TestFamiliesOrderStable(t *testing.T) {
	names := Adversaries()
	wantPrefix := []string{"static-path", "random-tree", "random-path", "ascending-path",
		"block-leader", "min-gain", "k-leaves", "k-inner", "two-phase-path"}
	if len(names) < len(wantPrefix) {
		t.Fatalf("registry too small: %v", names)
	}
	if !reflect.DeepEqual(names[:len(wantPrefix)], wantPrefix) {
		t.Errorf("builtin order = %v, want %v", names[:len(wantPrefix)], wantPrefix)
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{"k": float64(3), "rate": float64(0.5), "mode": "greedy", "strict": true}
	if p.Int("k") != 3 || p.Int("missing") != 0 {
		t.Errorf("Int accessor wrong: %v", p)
	}
	if p.Float("rate") != 0.5 || p.Float("missing") != 0 {
		t.Errorf("Float accessor wrong: %v", p)
	}
	if p.String("mode") != "greedy" || p.String("missing") != "" {
		t.Errorf("String accessor wrong: %v", p)
	}
	if !p.Bool("strict") || p.Bool("missing") {
		t.Errorf("Bool accessor wrong: %v", p)
	}
}

func TestScenarioFlag(t *testing.T) {
	var f ScenarioFlag
	if err := f.Set("random-tree"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set(`{"adversary":"k-leaves","params":{"k":2}}`); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("{broken"); err == nil {
		t.Error("Set accepted malformed scenario JSON")
	}
	if len(f) != 2 || f[0].Adversary != "random-tree" || f[1].Adversary != "k-leaves" {
		t.Errorf("accumulated flag wrong: %+v", f)
	}
	if s := f.String(); !strings.Contains(s, "random-tree") || !strings.Contains(s, "k-leaves") {
		t.Errorf("String() = %q", s)
	}
}

// TestGroundScenariosAndCellName: the exported expansion helpers used by
// meta-campaign layers follow exactly the spec-compilation rules — axis
// cross products, default filling, canonical values — and CellName names
// the same cell RunSpec aggregates under.
func TestGroundScenariosAndCellName(t *testing.T) {
	grounds, err := GroundScenarios(Scenario{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(grounds) != 2 {
		t.Fatalf("axis expanded to %d grounds, want 2: %v", len(grounds), grounds)
	}
	if k, ok := grounds[0].Params["k"].(float64); !ok || k != 2 {
		t.Errorf("ground param not canonicalized: %#v", grounds[0].Params["k"])
	}
	name, err := CellName(grounds[0], 16)
	if err != nil {
		t.Fatal(err)
	}
	if name != "k-leaves/n=16/k=2" {
		t.Errorf("CellName = %q, want k-leaves/n=16/k=2", name)
	}
	if _, err := CellName(Scenario{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 4}}}, 16); err == nil {
		t.Error("CellName accepted an axis scenario")
	}
	if _, err := GroundScenarios(Scenario{Adversary: "no-such-family"}); err == nil {
		t.Error("GroundScenarios accepted an unknown family")
	}
}

// TestFloatBoolParamCanonicalization: float and bool params — exercised
// by no built-in family — normalize, render, and expand like the int and
// string kinds.
func TestFloatBoolParamCanonicalization(t *testing.T) {
	if err := Register(Family{
		Name: "t-knobs",
		Params: []Param{
			{Name: "rate", Kind: FloatParam, Default: 1.0, Doc: "a float knob"},
			{Name: "flip", Kind: BoolParam, Default: false, Doc: "a bool knob"},
		},
		New: func(n int, p Params, _ *rng.Source) (core.Adversary, error) {
			return adversary.Func(func(v core.View) *tree.Tree {
				s, err := tree.Star(v.N(), 0)
				if err != nil {
					return nil
				}
				return s
			}), nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	// int-typed Go values reach float params through toFloat; fractional
	// floats and bools render into the cell key verbatim.
	grounds, err := GroundScenarios(Scenario{Adversary: "t-knobs",
		Params: map[string]any{"rate": []any{3, 2.5}, "flip": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(grounds) != 2 {
		t.Fatalf("expanded to %d grounds, want 2", len(grounds))
	}
	whole, err := CellName(grounds[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if whole != "t-knobs/n=4/rate=3/flip=true" {
		t.Errorf("CellName = %q, want t-knobs/n=4/rate=3/flip=true", whole)
	}
	frac, err := CellName(grounds[1], 4)
	if err != nil {
		t.Fatal(err)
	}
	if frac != "t-knobs/n=4/rate=2.5/flip=true" {
		t.Errorf("CellName = %q, want t-knobs/n=4/rate=2.5/flip=true", frac)
	}

	// Kind mismatches are rejected for both new kinds.
	for _, bad := range []map[string]any{
		{"rate": "fast"},
		{"flip": 1},
	} {
		if _, err := GroundScenarios(Scenario{Adversary: "t-knobs", Params: bad}); err == nil {
			t.Errorf("params %v accepted, want kind error", bad)
		}
	}
}
