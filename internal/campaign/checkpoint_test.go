package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func artifactBytes(t *testing.T, o *Outcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKillAndResumeByteIdentity is the headline guarantee of the
// checkpoint layer: interrupt a campaign mid-run, resume from its
// checkpoint, and the resulting artifact is byte-identical to an
// uninterrupted run — for several worker counts on both sides.
func TestKillAndResumeByteIdentity(t *testing.T) {
	spec := detSpec()
	uninterrupted, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := artifactBytes(t, uninterrupted)

	for _, workers := range []int{1, 4} {
		for _, resumeWorkers := range []int{1, 3} {
			// Phase 1: run with a checkpoint attached and "kill" the
			// campaign (cancel its context) after a handful of results.
			path := filepath.Join(t.TempDir(), "run.ckpt")
			cf, err := OpenCheckpointFile(path, spec)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			seen := 0
			cfg := cf.Wire(Config{Workers: workers, OnResult: func(JobResult) {
				if seen++; seen == 5 {
					cancel()
				}
			}})
			partial, runErr := RunSpec(ctx, spec, cfg)
			cancel()
			if runErr == nil {
				t.Fatalf("workers=%d: interrupted run reported no error", workers)
			}
			if err := cf.Close(); err != nil {
				t.Fatal(err)
			}
			if partial.Completed == 0 || partial.Completed == partial.Jobs {
				t.Fatalf("workers=%d: interruption not mid-run: %d/%d jobs",
					workers, partial.Completed, partial.Jobs)
			}

			// Phase 2: resume from the checkpoint in a fresh "process".
			cp, err := LoadCheckpointFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(cp.Results) == 0 {
				t.Fatalf("workers=%d: checkpoint recorded nothing", workers)
			}
			resumed, err := ResumeSpec(context.Background(), spec, cp, Config{Workers: resumeWorkers})
			if err != nil {
				t.Fatalf("workers=%d resume=%d: %v", workers, resumeWorkers, err)
			}
			if resumed.Reused != len(cp.Results) {
				t.Errorf("workers=%d resume=%d: reused %d jobs, checkpoint held %d",
					workers, resumeWorkers, resumed.Reused, len(cp.Results))
			}
			if resumed.Executed != resumed.Jobs-resumed.Reused {
				t.Errorf("workers=%d resume=%d: executed %d, want %d",
					workers, resumeWorkers, resumed.Executed, resumed.Jobs-resumed.Reused)
			}
			if got := artifactBytes(t, resumed); !bytes.Equal(got, want) {
				t.Errorf("workers=%d resume=%d: resumed artifact differs from uninterrupted run",
					workers, resumeWorkers)
			}
		}
	}
}

// TestCheckpointFileRoundTrip: a full checkpointed run records every job,
// and reopening the file reuses them all.
func TestCheckpointFileRoundTrip(t *testing.T) {
	spec := Spec{Adversaries: []string{"random-path"}, Ns: []int{8, 16}, Trials: 3, Seed: 11}
	path := filepath.Join(t.TempDir(), "full.ckpt")

	cf, err := OpenCheckpointFile(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunSpec(context.Background(), spec, cf.Wire(Config{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	cf2, err := OpenCheckpointFile(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cf2.Close()
	if len(cf2.Completed) != first.Jobs {
		t.Fatalf("reopened checkpoint holds %d jobs, want %d", len(cf2.Completed), first.Jobs)
	}
	second, err := RunSpec(context.Background(), spec, cf2.Wire(Config{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if second.Reused != second.Jobs || second.Executed != 0 {
		t.Errorf("second run reused/executed = %d/%d, want %d/0",
			second.Reused, second.Executed, second.Jobs)
	}
	if !bytes.Equal(artifactBytes(t, first), artifactBytes(t, second)) {
		t.Error("fully-resumed artifact differs")
	}
}

func TestCheckpointRejectsForeignSpec(t *testing.T) {
	spec := Spec{Adversaries: []string{"random-path"}, Ns: []int{8}, Trials: 2, Seed: 1}
	other := spec
	other.Seed = 2
	path := filepath.Join(t.TempDir(), "a.ckpt")
	cf, err := OpenCheckpointFile(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpec(context.Background(), spec, cf.Wire(Config{})); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenCheckpointFile(path, other); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("foreign spec accepted for append: %v", err)
	}
	cp, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeSpec(context.Background(), other, cp, Config{}); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("foreign spec accepted for resume: %v", err)
	}
}

// TestCheckpointToleratesTornTail: a file whose last line was cut by a
// kill still loads, losing only that record.
func TestCheckpointToleratesTornTail(t *testing.T) {
	spec := Spec{Adversaries: []string{"random-path"}, Ns: []int{8}, Trials: 4, Seed: 5}
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	cf, err := OpenCheckpointFile(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpec(context.Background(), spec, cf.Wire(Config{})); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7] // cut into the final record
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("torn checkpoint rejected: %v", err)
	}
	if len(cp.Results) != 3 {
		t.Errorf("torn checkpoint holds %d records, want 3", len(cp.Results))
	}
	o, err := ResumeSpec(context.Background(), spec, cp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Completed != o.Jobs || o.Reused != 3 {
		t.Errorf("resume from torn checkpoint: completed/reused = %d/%d", o.Completed, o.Reused)
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "not json\n", `{"format":"something-else/9"}` + "\n"} {
		if _, err := LoadCheckpoint(strings.NewReader(in)); err == nil {
			t.Errorf("LoadCheckpoint(%q) succeeded", in)
		}
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	base := detSpec()
	h := SpecHash(base)
	mutations := map[string]func(*Spec){
		"seed":   func(s *Spec) { s.Seed++ },
		"trials": func(s *Spec) { s.Trials++ },
		"goal":   func(s *Spec) { s.Goal = "gossip" },
		"ns":     func(s *Spec) { s.Ns = append(s.Ns, 99) },
	}
	for name, mutate := range mutations {
		spec := base
		mutate(&spec)
		if SpecHash(spec) == h {
			t.Errorf("hash insensitive to %s", name)
		}
	}
	if SpecHash(base) != h {
		t.Error("hash not stable")
	}
	// Presentation must not affect identity: the name and the two
	// spellings of the default goal hash alike, so checkpoints written
	// under one spelling resume under the other.
	named := base
	named.Name = "renamed"
	if SpecHash(named) != h {
		t.Error("hash depends on the campaign name")
	}
	spelled := base
	spelled.Goal = "broadcast"
	if SpecHash(spelled) != h {
		t.Error(`hash distinguishes goal "" from "broadcast"`)
	}
}
