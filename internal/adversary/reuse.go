package adversary

import (
	"dyntreecast/internal/bitset"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// This file implements the reusable forms of the stock adversaries for
// the batched trial pipeline (DESIGN.md §3d). A reusable adversary owns
// per-n scratch — tree buffers, bitset rows, sort workspaces — built once
// and reused across every round of every trial a worker executes; Reset
// rebinds it to a fresh trial's random source. Each form is
// move-for-move equivalent to its allocating sibling: it consumes the
// same random draws in the same order and plays the same trees, so the
// batched pipeline's artifacts are byte-identical to the per-trial
// pipeline's (the differential tests in reuse_test.go and the campaign
// byte-identity suite pin this).
//
// The trees a reusable adversary returns alias its scratch: they are
// valid only until its next Next call, which is exactly the lifetime
// core.Engine.Step needs. Do not combine them with observers that retain
// round trees (use the allocating forms there).

// Stateless wraps a source-free deterministic adversary (AscendingPath,
// MinGain, a Static schedule, …) as a reusable one: Reset is a no-op
// because the adversary derives everything from the view. It still buys
// the batched pipeline one construction per cell instead of one per
// trial — for Static over a precomputed tree, that is the whole tree.
type Stateless struct{ core.Adversary }

// Reset implements the reusable-adversary contract; source-free
// adversaries have nothing to rebind.
func (Stateless) Reset(*rng.Source) {}

// ReusableRandom is Random with a pooled tree buffer: one uniformly
// random rooted tree per round, generated in place.
type ReusableRandom struct {
	src *rng.Source
	buf tree.Buf
}

// NewReusableRandom returns an unbound ReusableRandom; Reset binds it to
// a trial's source before use.
func NewReusableRandom() *ReusableRandom { return &ReusableRandom{} }

// Reset rebinds the adversary to a fresh trial's source.
func (r *ReusableRandom) Reset(src *rng.Source) { r.src = src }

// Next implements core.Adversary.
func (r *ReusableRandom) Next(v core.View) *tree.Tree {
	return tree.RandomInto(&r.buf, v.N(), r.src)
}

// ReusableRandomPath is RandomPath with a pooled tree buffer.
type ReusableRandomPath struct {
	src *rng.Source
	buf tree.Buf
}

// NewReusableRandomPath returns an unbound ReusableRandomPath.
func NewReusableRandomPath() *ReusableRandomPath { return &ReusableRandomPath{} }

// Reset rebinds the adversary to a fresh trial's source.
func (r *ReusableRandomPath) Reset(src *rng.Source) { r.src = src }

// Next implements core.Adversary.
func (r *ReusableRandomPath) Next(v core.View) *tree.Tree {
	return tree.RandomPathInto(&r.buf, v.N(), r.src)
}

// ReusableKLeaves is KLeaves with a pooled tree buffer.
type ReusableKLeaves struct {
	k   int
	src *rng.Source
	buf tree.Buf
}

// NewReusableKLeaves returns an unbound ReusableKLeaves playing trees
// with exactly k leaves.
func NewReusableKLeaves(k int) *ReusableKLeaves { return &ReusableKLeaves{k: k} }

// Reset rebinds the adversary to a fresh trial's source.
func (r *ReusableKLeaves) Reset(src *rng.Source) { r.src = src }

// Next implements core.Adversary. Like KLeaves it returns nil (failing
// the run) if k is infeasible for the engine's n.
func (r *ReusableKLeaves) Next(v core.View) *tree.Tree {
	t, err := tree.RandomWithLeavesInto(&r.buf, v.N(), r.k, r.src)
	if err != nil {
		return nil
	}
	return t
}

// ReusableKInner is KInner with a pooled tree buffer.
type ReusableKInner struct {
	k   int
	src *rng.Source
	buf tree.Buf
}

// NewReusableKInner returns an unbound ReusableKInner playing trees with
// exactly k inner nodes.
func NewReusableKInner(k int) *ReusableKInner { return &ReusableKInner{k: k} }

// Reset rebinds the adversary to a fresh trial's source.
func (r *ReusableKInner) Reset(src *rng.Source) { r.src = src }

// Next implements core.Adversary. Like KInner it returns nil (failing
// the run) if k is infeasible for the engine's n.
func (r *ReusableKInner) Next(v core.View) *tree.Tree {
	t, err := tree.RandomWithInnerInto(&r.buf, v.N(), r.k, r.src)
	if err != nil {
		return nil
	}
	return t
}

// countingSortByAsc stably sorts order (a permutation of [0,n)) by
// ascending key[v], using bucket as counting-sort scratch (grown to
// maxKey+2). A stable sort by one key has a unique result, so this
// reproduces sort.SliceStable's order exactly — the scratch adversaries
// must play the same paths their allocating siblings do — without
// reflection or allocation.
func countingSortByAsc(order, tmp []int, key []int, bucket *[]int, maxKey int) {
	buckets := tree.Grow(bucket, maxKey+2)
	for i := range buckets {
		buckets[i] = 0
	}
	for _, v := range order {
		buckets[key[v]+1]++
	}
	for i := 0; i < maxKey+1; i++ {
		buckets[i+1] += buckets[i]
	}
	copy(tmp, order)
	for _, v := range tmp {
		order[buckets[key[v]]] = v
		buckets[key[v]]++
	}
}

// ReusableAscendingPath is AscendingPath with pooled sort scratch and
// tree buffer: each round it plays the same ascending-heard-count path
// AscendingPath would, built in place.
type ReusableAscendingPath struct {
	buf                        tree.Buf
	counts, order, tmp, bucket []int
}

// NewReusableAscendingPath returns a reusable AscendingPath.
func NewReusableAscendingPath() *ReusableAscendingPath { return &ReusableAscendingPath{} }

// Reset implements the reusable-adversary contract (AscendingPath is
// source-free).
func (*ReusableAscendingPath) Reset(*rng.Source) {}

// Next implements core.Adversary.
func (a *ReusableAscendingPath) Next(v core.View) *tree.Tree {
	n := v.N()
	counts := tree.Grow(&a.counts, n)
	order := tree.Grow(&a.order, n)
	tmp := tree.Grow(&a.tmp, n)
	for i := 0; i < n; i++ {
		counts[i] = v.Heard(i).Count()
		order[i] = i
	}
	countingSortByAsc(order, tmp, counts, &a.bucket, n)
	return tree.PathInto(&a.buf, order)
}

// ReusableBlockLeader is BlockLeader with pooled reach-set rows and sort
// scratch: the bitset rows are built once per n and refilled in place
// each round instead of being reallocated per trial.
type ReusableBlockLeader struct {
	buf                tree.Buf
	rows               []*bitset.Set
	counts, order, tmp []int
	bucket             []int
}

// NewReusableBlockLeader returns a reusable BlockLeader.
func NewReusableBlockLeader() *ReusableBlockLeader { return &ReusableBlockLeader{} }

// Reset implements the reusable-adversary contract (BlockLeader is
// source-free).
func (*ReusableBlockLeader) Reset(*rng.Source) {}

// reachRows refills the pooled rows with the view's reach sets — the
// in-place sibling of reachSets.
func (a *ReusableBlockLeader) reachRows(v core.View) []*bitset.Set {
	n := v.N()
	if len(a.rows) != n || (n > 0 && a.rows[0].Len() != n) {
		a.rows = make([]*bitset.Set, n)
		for x := range a.rows {
			a.rows[x] = bitset.New(n)
		}
	} else {
		for _, r := range a.rows {
			r.Reset()
		}
	}
	for y := 0; y < n; y++ {
		v.Heard(y).ForEach(func(x int) bool {
			a.rows[x].Set(y)
			return true
		})
	}
	return a.rows
}

// Next implements core.Adversary: the same leader choice and path order
// as BlockLeader, with every buffer pooled.
func (a *ReusableBlockLeader) Next(v core.View) *tree.Tree {
	n := v.N()
	rows := a.reachRows(v)
	counts := tree.Grow(&a.counts, n)
	for y := 0; y < n; y++ {
		counts[y] = v.Heard(y).Count()
	}

	// Leader: incomplete value with maximum reach; ties by id.
	leader, best := -1, -1
	for x := 0; x < n; x++ {
		if c := rows[x].Count(); c < n && c > best {
			leader, best = x, c
		}
	}
	if leader < 0 {
		// Every value has completed (broadcast done); any tree is fine.
		// (IdentityPath allocates, but this round is unreachable from the
		// run loop, which stops once broadcast completes.)
		return tree.IdentityPath(n)
	}

	// order = non-knowers of the leader, then knowers, each segment
	// stably sorted by ascending heard count — BlockLeader's exact order.
	order := tree.Grow(&a.order, n)
	tmp := tree.Grow(&a.tmp, n)
	nk := 0
	for y := 0; y < n; y++ {
		if !v.Heard(y).Test(leader) {
			order[nk] = y
			nk++
		}
	}
	kStart := nk
	for y := 0; y < n; y++ {
		if v.Heard(y).Test(leader) {
			order[kStart] = y
			kStart++
		}
	}
	countingSortByAsc(order[:nk], tmp[:nk], counts, &a.bucket, n)
	countingSortByAsc(order[nk:], tmp[nk:], counts, &a.bucket, n)
	return tree.PathInto(&a.buf, order)
}

// ReusableTwoPhasePath is TwoPhasePath with both phase trees precomputed
// at construction: Next just selects by round, so a whole cell's trials
// share two trees instead of rebuilding one per round.
type ReusableTwoPhasePath struct {
	switchAt       int
	phase1, phase2 *tree.Tree
}

// NewReusableTwoPhasePath validates like NewTwoPhasePath and precomputes
// the two phase trees.
func NewReusableTwoPhasePath(n, switchAt, prefix int) (*ReusableTwoPhasePath, error) {
	if _, err := NewTwoPhasePath(n, switchAt, prefix); err != nil {
		return nil, err
	}
	order := make([]int, 0, n)
	for i := prefix - 1; i >= 0; i-- {
		order = append(order, i)
	}
	for i := prefix; i < n; i++ {
		order = append(order, i)
	}
	return &ReusableTwoPhasePath{
		switchAt: switchAt,
		phase1:   tree.IdentityPath(n),
		phase2:   tree.MustPath(order),
	}, nil
}

// Reset implements the reusable-adversary contract (the schedule is
// oblivious).
func (*ReusableTwoPhasePath) Reset(*rng.Source) {}

// Next implements core.Adversary.
func (a *ReusableTwoPhasePath) Next(v core.View) *tree.Tree {
	if v.Round() < a.switchAt {
		return a.phase1
	}
	return a.phase2
}
