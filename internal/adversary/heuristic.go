package adversary

import (
	"fmt"
	"sort"

	"dyntreecast/internal/core"
	"dyntreecast/internal/tree"
)

// AscendingPath plays, each round, the path ordered by ascending heard-set
// size: the most ignorant process is the root and everyone receives from a
// process that knows at most as much as its own tier. Ties break by
// process id, so the adversary is deterministic.
//
// Rationale: along a path v1 → v2 → …, process v_{i+1} gains K_{v_i} \
// K_{v_{i+1}}; feeding everyone from less-knowledgeable processes keeps
// per-round knowledge growth near its minimum.
type AscendingPath struct{}

// Next implements core.Adversary.
func (AscendingPath) Next(v core.View) *tree.Tree {
	n := v.N()
	counts := heardCounts(v)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return counts[order[a]] < counts[order[b]]
	})
	return tree.MustPath(order)
}

var _ core.Adversary = AscendingPath{}

// DescendingPath is the mirror image of AscendingPath (most knowledgeable
// process at the root). It is a deliberately *bad* adversary — it
// accelerates broadcast — and serves as the contrast case in the
// heuristic-comparison experiments.
type DescendingPath struct{}

// Next implements core.Adversary.
func (DescendingPath) Next(v core.View) *tree.Tree {
	n := v.N()
	counts := heardCounts(v)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return counts[order[a]] > counts[order[b]]
	})
	return tree.MustPath(order)
}

var _ core.Adversary = DescendingPath{}

// BlockLeader stalls the most dangerous value. Each round it identifies
// the leader — the incomplete value x with the largest reach set R_x —
// and plays a path whose prefix consists of the processes that have NOT
// heard x. Every non-knower's parent is then also a non-knower, so R_x
// does not grow at all this round; the leader is frozen while the rest of
// the state drifts as slowly as possible (both segments are ordered by
// ascending heard count).
//
// This single-round blocking is the basic mechanism behind the known
// lower-bound constructions: broadcast cannot finish until the adversary
// runs out of values it can afford to freeze.
type BlockLeader struct{}

// Next implements core.Adversary.
func (BlockLeader) Next(v core.View) *tree.Tree {
	n := v.N()
	rows := reachSets(v)
	counts := heardCounts(v)

	// Leader: incomplete value with maximum reach; ties by id.
	leader, best := -1, -1
	for x := 0; x < n; x++ {
		if c := rows[x].Count(); c < n && c > best {
			leader, best = x, c
		}
	}
	if leader < 0 {
		// Every value has completed (broadcast done); any tree is fine.
		return tree.IdentityPath(n)
	}

	nonKnowers := make([]int, 0, n)
	knowers := make([]int, 0, n)
	for y := 0; y < n; y++ {
		if v.Heard(y).Test(leader) {
			knowers = append(knowers, y)
		} else {
			nonKnowers = append(nonKnowers, y)
		}
	}
	byAscCount := func(s []int) {
		sort.SliceStable(s, func(a, b int) bool { return counts[s[a]] < counts[s[b]] })
	}
	byAscCount(nonKnowers)
	byAscCount(knowers)
	order := append(nonKnowers, knowers...)
	return tree.MustPath(order)
}

var _ core.Adversary = BlockLeader{}

// TwoPhasePath is the explicit oblivious schedule in the spirit of the
// Zeiner–Schwarz–Schmid lower-bound construction: play the identity path
// for SwitchAt rounds, then play the path with its first Prefix vertices
// reversed for the remainder. With SwitchAt ≈ n/2 and Prefix ≈ n/2 the
// schedule forces the early leaders' values to double back through the
// first half before they can finish.
//
// The schedule is oblivious (state-independent), so the broadcast time it
// achieves is a certified lower bound on t*(Tn) for that n. The bench
// harness sweeps SwitchAt/Prefix and reports the best value found.
type TwoPhasePath struct {
	N        int
	SwitchAt int // rounds of phase 1
	Prefix   int // how many leading vertices to reverse in phase 2
}

// NewTwoPhasePath validates the schedule's shape and returns it as an
// adversary. Unlike constructing the struct directly (whose Next panics
// on a mismatched n — a programmer error), this path returns errors, so
// it is safe to reach from user input such as campaign specs and
// campaignd requests.
func NewTwoPhasePath(n, switchAt, prefix int) (core.Adversary, error) {
	if n < 1 {
		return nil, fmt.Errorf("adversary: two-phase path needs n >= 1, got %d", n)
	}
	if switchAt < 0 {
		return nil, fmt.Errorf("adversary: two-phase path needs switch_at >= 0, got %d", switchAt)
	}
	if prefix < 0 || prefix > n {
		return nil, fmt.Errorf("adversary: two-phase path needs 0 <= prefix <= n, got prefix=%d at n=%d", prefix, n)
	}
	return TwoPhasePath{N: n, SwitchAt: switchAt, Prefix: prefix}, nil
}

// Next implements core.Adversary.
func (a TwoPhasePath) Next(v core.View) *tree.Tree {
	validateN(a.N, v.N())
	n := a.N
	if v.Round() < a.SwitchAt {
		return tree.IdentityPath(n)
	}
	p := a.Prefix
	if p > n {
		p = n
	}
	order := make([]int, 0, n)
	for i := p - 1; i >= 0; i-- {
		order = append(order, i)
	}
	for i := p; i < n; i++ {
		order = append(order, i)
	}
	return tree.MustPath(order)
}

var _ core.Adversary = TwoPhasePath{}
