package adversary

import (
	"fmt"

	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// StaleAscendingPath is an adaptive adversary operating on delayed
// information: each round it plays the ascending-heard-count path that
// AscendingPath would have played Lag rounds earlier. It models an
// adversary whose view of the network lags behind reality — scheduling
// decisions propagate slowly — which interpolates between the fully
// adaptive heuristics (lag 0 is exactly AscendingPath) and the oblivious
// schedules (large lag degenerates toward replaying the opening move).
//
// The adversary is deterministic and source-free; its only state is a
// ring of heard-count snapshots indexed by the view's round counter, so
// one instance can drive many trials back to back (each trial restarts
// at round 0 and overwrites the ring before ever reading it). It
// implements the campaign layer's reusable-adversary contract directly:
// the reusable form and a freshly built one are the same type, so the
// batched and per-trial pipelines are trivially move-identical.
type StaleAscendingPath struct {
	lag   int
	n     int
	snaps [][]int // ring of lag+1 heard-count snapshots, indexed round mod (lag+1)
	// sort scratch, pooled across rounds and trials
	buf                tree.Buf
	order, tmp, bucket []int
}

// NewStaleAscendingPath returns an adversary playing the ascending path
// on knowledge delayed by lag rounds. lag must be >= 0; lag 0 reproduces
// AscendingPath move for move.
func NewStaleAscendingPath(lag int) (*StaleAscendingPath, error) {
	if lag < 0 {
		return nil, fmt.Errorf("adversary: stale lag must be >= 0, got %d", lag)
	}
	return &StaleAscendingPath{lag: lag, n: -1}, nil
}

// Reset implements the campaign reusable-adversary contract. The ring is
// self-cleaning — round r writes its snapshot before any round reads it,
// and trials restart at round 0 — so there is nothing to rebind.
func (*StaleAscendingPath) Reset(*rng.Source) {}

// Next implements core.Adversary: record the current heard counts under
// the view's round index, then build the ascending path from the counts
// of max(0, round−lag) — the freshest state the lagged adversary has.
func (a *StaleAscendingPath) Next(v core.View) *tree.Tree {
	n, r := v.N(), v.Round()
	if n != a.n {
		a.snaps = make([][]int, a.lag+1)
		for i := range a.snaps {
			a.snaps[i] = make([]int, n)
		}
		a.n = n
	}
	cur := a.snaps[r%(a.lag+1)]
	for y := 0; y < n; y++ {
		cur[y] = v.Heard(y).Count()
	}
	stale := r - a.lag
	if stale < 0 {
		stale = 0
	}
	counts := a.snaps[stale%(a.lag+1)]

	order := tree.Grow(&a.order, n)
	tmp := tree.Grow(&a.tmp, n)
	for i := 0; i < n; i++ {
		order[i] = i
	}
	countingSortByAsc(order, tmp, counts, &a.bucket, n)
	return tree.PathInto(&a.buf, order)
}

var _ core.Adversary = (*StaleAscendingPath)(nil)
