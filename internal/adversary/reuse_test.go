package adversary_test

import (
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
)

// resettable is the reuse contract under test (structurally identical to
// campaign.ReusableAdversary; redeclared here to keep the adversary
// package's tests free of a campaign dependency).
type resettable interface {
	core.Adversary
	Reset(src *rng.Source)
}

// reusePair couples an allocating adversary constructor with its
// reusable sibling for the differential suite.
type reusePair struct {
	name  string
	plain func(src *rng.Source) core.Adversary
	reuse func() resettable
}

func reusePairs() []reusePair {
	return []reusePair{
		{
			name:  "random",
			plain: func(src *rng.Source) core.Adversary { return adversary.Random{Src: src} },
			reuse: func() resettable { return adversary.NewReusableRandom() },
		},
		{
			name:  "random-path",
			plain: func(src *rng.Source) core.Adversary { return adversary.RandomPath{Src: src} },
			reuse: func() resettable { return adversary.NewReusableRandomPath() },
		},
		{
			name:  "k-leaves",
			plain: func(src *rng.Source) core.Adversary { return adversary.KLeaves{K: 3, Src: src} },
			reuse: func() resettable { return adversary.NewReusableKLeaves(3) },
		},
		{
			name:  "k-inner",
			plain: func(src *rng.Source) core.Adversary { return adversary.KInner{K: 2, Src: src} },
			reuse: func() resettable { return adversary.NewReusableKInner(2) },
		},
		{
			name:  "ascending-path",
			plain: func(*rng.Source) core.Adversary { return adversary.AscendingPath{} },
			reuse: func() resettable { return adversary.NewReusableAscendingPath() },
		},
		{
			name:  "block-leader",
			plain: func(*rng.Source) core.Adversary { return adversary.BlockLeader{} },
			reuse: func() resettable { return adversary.NewReusableBlockLeader() },
		},
		{
			name:  "min-gain",
			plain: func(*rng.Source) core.Adversary { return adversary.MinGain{} },
			reuse: func() resettable { return adversary.Stateless{Adversary: adversary.MinGain{}} },
		},
	}
}

// TestReusableMatchesPlain is the reuse contract: one reusable adversary,
// Reset per trial, produces the same broadcast times as a fresh
// allocating adversary per trial — the whole batched pipeline rests on
// this move-for-move equivalence.
func TestReusableMatchesPlain(t *testing.T) {
	for _, p := range reusePairs() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, n := range []int{5, 16, 31} {
				runner := core.NewRunner()
				reusable := p.reuse()
				for trial := 0; trial < 6; trial++ {
					seed := uint64(n*1000 + trial)
					want, errA := core.BroadcastTime(n, p.plain(rng.New(seed)))
					reusable.Reset(rng.New(seed))
					got, errB := runner.BroadcastTime(n, reusable)
					if (errA == nil) != (errB == nil) || want != got {
						t.Fatalf("n=%d trial %d: plain %d (%v), reusable %d (%v)",
							n, trial, want, errA, got, errB)
					}
				}
			}
		})
	}
}

// TestReusableTwoPhasePathMatches checks the precomputed-schedule form
// against the per-round-constructing original, including validation.
func TestReusableTwoPhasePathMatches(t *testing.T) {
	for _, n := range []int{4, 16, 33} {
		for _, cfg := range [][2]int{{n / 2, n / 2}, {1, n}, {0, 1}} {
			plain, err := adversary.NewTwoPhasePath(n, cfg[0], cfg[1])
			if err != nil {
				t.Fatal(err)
			}
			reuse, err := adversary.NewReusableTwoPhasePath(n, cfg[0], cfg[1])
			if err != nil {
				t.Fatal(err)
			}
			want, errA := core.BroadcastTime(n, plain)
			got, errB := core.NewRunner().BroadcastTime(n, reuse)
			if errA != nil || errB != nil || want != got {
				t.Fatalf("n=%d cfg=%v: plain %d (%v), reusable %d (%v)", n, cfg, want, errA, got, errB)
			}
		}
	}
	if _, err := adversary.NewReusableTwoPhasePath(4, -1, 2); err == nil {
		t.Error("negative switch_at accepted")
	}
	if _, err := adversary.NewReusableTwoPhasePath(4, 1, 5); err == nil {
		t.Error("prefix > n accepted")
	}
}

// TestReusableKInfeasible: like the allocating forms, the reusable k
// families fail the run (nil tree) when k is infeasible at the engine's n.
func TestReusableKInfeasible(t *testing.T) {
	adv := adversary.NewReusableKLeaves(9)
	adv.Reset(rng.New(1))
	if tr := adv.Next(core.NewEngine(4)); tr != nil {
		t.Errorf("infeasible k returned tree %v", tr)
	}
}
