package adversary

import (
	"sort"

	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// BeamConfig tunes BeamSearch.
type BeamConfig struct {
	// Width is the number of states kept per depth (default 8).
	Width int
	// RandomMoves is the number of extra random-path proposals per state
	// per round (default 4), on top of the deterministic heuristics.
	RandomMoves int
	// RandomTrees is the number of extra uniformly random tree proposals
	// per state per round (default 4). The optimal adversary for small n
	// plays general trees, not paths, so these proposals matter.
	RandomTrees int
	// MaxRounds caps the search depth (default bounds-safe n²+1).
	MaxRounds int
	// Seed drives the random proposals.
	Seed uint64
}

// beamNode is one search state: an engine plus the move history that led
// to it (shared persistent list to avoid copying schedules).
type beamNode struct {
	eng  *core.Engine
	hist *histNode
	// score fields, recomputed per round: primary = max reach of any
	// value (smaller is better — farther from completion), secondary =
	// total edges (smaller is better).
	maxReach   int
	totalEdges int
}

type histNode struct {
	prev *histNode
	t    *tree.Tree
}

func (h *histNode) schedule() []*tree.Tree {
	var rev []*tree.Tree
	for n := h; n != nil; n = n.prev {
		rev = append(rev, n.t)
	}
	out := make([]*tree.Tree, len(rev))
	for i, t := range rev {
		out[len(rev)-1-i] = t
	}
	return out
}

// BeamSearch searches offline for a tree schedule that maximizes broadcast
// time on n processes and returns the best schedule found (as a Replay
// adversary) together with the number of rounds it survives — a certified
// achievable value, hence a lower bound witness for t*(Tn).
//
// Each round, every beam state proposes candidate trees from the adaptive
// heuristics (AscendingPath, BlockLeader, MinGain) plus random paths, and
// the most-stalled resulting states are kept. The search ends when every
// beam state has completed broadcast; the longest-surviving history wins.
func BeamSearch(n int, cfg BeamConfig) (Replay, int) {
	if cfg.Width <= 0 {
		cfg.Width = 8
	}
	if cfg.RandomMoves < 0 {
		cfg.RandomMoves = 0
	} else if cfg.RandomMoves == 0 {
		cfg.RandomMoves = 4
	}
	if cfg.RandomTrees < 0 {
		cfg.RandomTrees = 0
	} else if cfg.RandomTrees == 0 {
		cfg.RandomTrees = 4
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = n*n + 1
	}
	src := rng.New(cfg.Seed)

	if n == 1 {
		return Replay{Trees: []*tree.Tree{tree.MustNew([]int{0})}}, 0
	}

	proposers := []core.Adversary{AscendingPath{}, BlockLeader{}, MinGain{Roots: 2}}

	beam := []*beamNode{{eng: core.NewEngine(n)}}
	bestRounds := 0
	bestHist := (*histNode)(nil)

	for depth := 1; depth <= cfg.MaxRounds && len(beam) > 0; depth++ {
		var next []*beamNode
		seen := map[string]bool{}
		for _, node := range beam {
			cands := make([]*tree.Tree, 0, len(proposers)+cfg.RandomMoves+cfg.RandomTrees)
			for _, p := range proposers {
				cands = append(cands, p.Next(node.eng))
			}
			for i := 0; i < cfg.RandomMoves; i++ {
				cands = append(cands, tree.RandomPath(n, src))
			}
			for i := 0; i < cfg.RandomTrees; i++ {
				cands = append(cands, tree.Random(n, src))
			}
			for _, t := range cands {
				child := node.eng.Clone()
				child.Step(t)
				hist := &histNode{prev: node.hist, t: t}
				if child.BroadcastDone() {
					// This schedule ends here; it survived depth−1 full
					// rounds before the completing round.
					if depth > bestRounds {
						bestRounds = depth
						bestHist = hist
					}
					continue
				}
				key := child.Matrix().Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				next = append(next, scoreNode(child, hist))
			}
		}
		if len(next) == 0 {
			break
		}
		sort.SliceStable(next, func(a, b int) bool {
			if next[a].maxReach != next[b].maxReach {
				return next[a].maxReach < next[b].maxReach
			}
			return next[a].totalEdges < next[b].totalEdges
		})
		if len(next) > cfg.Width {
			next = next[:cfg.Width]
		}
		beam = next
		// Any surviving state already beats schedules that completed at
		// this depth; record a pessimistic floor so the final answer is
		// correct even if MaxRounds truncates the search.
		if depth >= bestRounds {
			bestRounds = depth
			bestHist = beam[0].hist
		}
	}

	if bestHist == nil {
		return Replay{Trees: []*tree.Tree{tree.IdentityPath(n)}}, n - 1
	}
	sched := bestHist.schedule()
	// Replaying the schedule: if the recorded best was a surviving
	// (incomplete) state, the Replay's repeat-last-tree rule finishes the
	// run; the reported rounds then undercount the replayed t*, which is
	// fine for a lower-bound witness. Re-measure for the exact value.
	rounds, err := core.BroadcastTime(n, Replay{Trees: sched})
	if err != nil {
		// The trivial-bound budget cannot be exceeded by a valid replay;
		// fall back to the searched floor.
		rounds = bestRounds
	}
	return Replay{Trees: sched}, rounds
}

func scoreNode(e *core.Engine, h *histNode) *beamNode {
	n := e.N()
	reach := make([]int, n)
	total := 0
	for y := 0; y < n; y++ {
		e.Heard(y).ForEach(func(x int) bool {
			reach[x]++
			return true
		})
	}
	maxReach := 0
	for _, c := range reach {
		total += c
		if c > maxReach {
			maxReach = c
		}
	}
	return &beamNode{eng: e, hist: h, maxReach: maxReach, totalEdges: total}
}
