package adversary

import (
	"errors"
	"testing"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestStaticPathBroadcast(t *testing.T) {
	for _, n := range []int{2, 5, 12} {
		got, err := core.BroadcastTime(n, Static{Tree: tree.IdentityPath(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got != bounds.StaticPath(n) {
			t.Errorf("n=%d: static path t* = %d, want %d", n, got, n-1)
		}
	}
}

func TestFuncAdapter(t *testing.T) {
	calls := 0
	adv := Func(func(v core.View) *tree.Tree {
		calls++
		return tree.IdentityPath(v.N())
	})
	if _, err := core.BroadcastTime(4, adv); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("Func called %d times, want 3", calls)
	}
}

func TestCycleAlternates(t *testing.T) {
	a := tree.IdentityPath(3)
	b := tree.MustPath([]int{2, 1, 0})
	var seen []*tree.Tree
	_, err := core.Run(3, Cycle{Trees: []*tree.Tree{a, b}}, core.Broadcast,
		core.WithObserver(func(r int, tr *tree.Tree, e *core.Engine) {
			seen = append(seen, tr)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) < 2 {
		t.Fatalf("run too short: %d rounds", len(seen))
	}
	if seen[0] != a || seen[1] != b {
		t.Error("Cycle did not alternate trees in order")
	}
}

func TestCycleEmptyFailsRun(t *testing.T) {
	_, err := core.Run(3, Cycle{}, core.Broadcast)
	if !errors.Is(err, core.ErrBadTree) {
		t.Fatalf("err = %v, want ErrBadTree", err)
	}
}

func TestReplayRepeatsLast(t *testing.T) {
	// Schedule of one reversed path; replay must repeat it and finish in
	// n−1 rounds.
	rev := tree.MustPath([]int{3, 2, 1, 0})
	got, err := core.BroadcastTime(4, Replay{Trees: []*tree.Tree{rev}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("t* = %d, want 3", got)
	}
}

func TestRandomAdversaryWithinBounds(t *testing.T) {
	src := rng.New(7)
	for _, n := range []int{2, 8, 32} {
		for trial := 0; trial < 5; trial++ {
			got, err := core.BroadcastTime(n, Random{Src: src})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if err := bounds.CheckSandwich(n, got); err != nil {
				t.Errorf("n=%d: %v", n, err)
			}
		}
	}
}

func TestRandomPathAdversaryWithinBounds(t *testing.T) {
	src := rng.New(8)
	for _, n := range []int{2, 8, 32} {
		got, err := core.BroadcastTime(n, RandomPath{Src: src})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := bounds.CheckSandwich(n, got); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestKLeavesPlaysOnlyKLeafTrees(t *testing.T) {
	src := rng.New(9)
	const n, k = 12, 3
	_, err := core.Run(n, KLeaves{K: k, Src: src}, core.Broadcast,
		core.WithObserver(func(r int, tr *tree.Tree, e *core.Engine) {
			if got := tr.NumLeaves(); got != k {
				t.Errorf("round %d: tree has %d leaves, want %d", r, got, k)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestKLeavesInfeasibleFailsRun(t *testing.T) {
	src := rng.New(9)
	_, err := core.Run(3, KLeaves{K: 5, Src: src}, core.Broadcast)
	if !errors.Is(err, core.ErrBadTree) {
		t.Fatalf("err = %v, want ErrBadTree", err)
	}
}

func TestKInnerPlaysOnlyKInnerTrees(t *testing.T) {
	src := rng.New(10)
	const n, k = 12, 4
	_, err := core.Run(n, KInner{K: k, Src: src}, core.Broadcast,
		core.WithObserver(func(r int, tr *tree.Tree, e *core.Engine) {
			if got := tr.NumInner(); got != k {
				t.Errorf("round %d: tree has %d inner nodes, want %d", r, got, k)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestAscendingPathWithinBounds(t *testing.T) {
	for _, n := range []int{2, 6, 20, 50} {
		got, err := core.BroadcastTime(n, AscendingPath{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := bounds.CheckSandwich(n, got); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if got < bounds.StaticPath(n)/2 {
			t.Errorf("n=%d: AscendingPath t* = %d suspiciously low", n, got)
		}
	}
}

func TestDescendingPathFasterThanAscending(t *testing.T) {
	// DescendingPath accelerates broadcast; AscendingPath delays it.
	for _, n := range []int{8, 24} {
		asc, err := core.BroadcastTime(n, AscendingPath{})
		if err != nil {
			t.Fatal(err)
		}
		desc, err := core.BroadcastTime(n, DescendingPath{})
		if err != nil {
			t.Fatal(err)
		}
		if desc > asc {
			t.Errorf("n=%d: descending (%d) slower than ascending (%d)", n, desc, asc)
		}
	}
}

func TestBlockLeaderFreezesLeader(t *testing.T) {
	// After a BlockLeader round, the pre-round leader's reach must not
	// have grown.
	e := core.NewEngine(8)
	e.Step(tree.IdentityPath(8)) // create a leader
	adv := BlockLeader{}
	for r := 0; r < 10 && !e.BroadcastDone(); r++ {
		leader, before := leaderReach(e)
		e.Step(adv.Next(e))
		after := reachSets(e)[leader].Count()
		if after != before {
			t.Fatalf("round %d: leader %d reach grew %d -> %d", r, leader, before, after)
		}
	}
}

func leaderReach(v core.View) (int, int) {
	rows := reachSets(v)
	leader, best := -1, -1
	for x := 0; x < v.N(); x++ {
		if c := rows[x].Count(); c < v.N() && c > best {
			leader, best = x, c
		}
	}
	return leader, best
}

func TestBlockLeaderWithinBounds(t *testing.T) {
	for _, n := range []int{2, 6, 20, 50} {
		got, err := core.BroadcastTime(n, BlockLeader{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := bounds.CheckSandwich(n, got); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestTwoPhasePath(t *testing.T) {
	const n = 10
	adv := TwoPhasePath{N: n, SwitchAt: n / 2, Prefix: n / 2}
	got, err := core.BroadcastTime(n, adv)
	if err != nil {
		t.Fatal(err)
	}
	if err := bounds.CheckSandwich(n, got); err != nil {
		t.Error(err)
	}
	// Note: naive phase switching is WEAKER than the static path (the
	// reversed prefix creates a fresh fast spreader); the schedule exists
	// as a documented negative result, so only the sandwich is asserted.
	if got < 1 {
		t.Errorf("two-phase t* = %d, want >= 1", got)
	}
}

func TestTwoPhasePathWrongNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, _ = core.BroadcastTime(5, TwoPhasePath{N: 7, SwitchAt: 3, Prefix: 3})
}
