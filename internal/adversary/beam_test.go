package adversary

import (
	"testing"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
)

func TestBeamSearchSmall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		replay, rounds := BeamSearch(n, BeamConfig{Width: 6, RandomMoves: 3, Seed: 1})
		if err := bounds.CheckSandwich(n, rounds); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds < bounds.StaticPath(n) {
			t.Errorf("n=%d: beam found only %d rounds, static path gives %d",
				n, rounds, n-1)
		}
		// The reported rounds must be reproducible by replaying the
		// schedule.
		got, err := core.BroadcastTime(n, replay)
		if err != nil {
			t.Fatalf("n=%d: replay failed: %v", n, err)
		}
		if got != rounds {
			t.Errorf("n=%d: replay gives %d rounds, search reported %d", n, got, rounds)
		}
	}
}

func TestBeamSearchBeatsStaticPath(t *testing.T) {
	// With general-tree proposals the search strictly beats the trivial
	// n−1 schedule at n = 8 (t*(T8) >= 10 per the ZSS lower bound, so
	// headroom exists). Wide beams are used to keep this deterministic.
	const n = 8
	best := 0
	for seed := uint64(1); seed <= 4 && best <= bounds.StaticPath(n); seed++ {
		_, rounds := BeamSearch(n, BeamConfig{
			Width: 24, RandomMoves: 6, RandomTrees: 10, Seed: seed,
		})
		if rounds > best {
			best = rounds
		}
	}
	if best <= bounds.StaticPath(n) {
		t.Errorf("n=%d: beam rounds = %d, want > %d", n, best, n-1)
	}
}

func TestBeamSearchN1(t *testing.T) {
	replay, rounds := BeamSearch(1, BeamConfig{})
	if rounds != 0 {
		t.Errorf("n=1 rounds = %d, want 0", rounds)
	}
	if got, err := core.BroadcastTime(1, replay); err != nil || got != 0 {
		t.Errorf("n=1 replay: %d, %v", got, err)
	}
}

func TestBeamSearchDeterministic(t *testing.T) {
	_, r1 := BeamSearch(6, BeamConfig{Width: 5, RandomMoves: 3, Seed: 7})
	_, r2 := BeamSearch(6, BeamConfig{Width: 5, RandomMoves: 3, Seed: 7})
	if r1 != r2 {
		t.Errorf("same seed gave %d and %d rounds", r1, r2)
	}
}
