package adversary

import (
	"testing"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
)

func TestBeamSearchSmall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		replay, rounds := BeamSearch(n, BeamConfig{Width: 6, RandomMoves: 3, Seed: 1})
		if err := bounds.CheckSandwich(n, rounds); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds < bounds.StaticPath(n) {
			t.Errorf("n=%d: beam found only %d rounds, static path gives %d",
				n, rounds, n-1)
		}
		// The reported rounds must be reproducible by replaying the
		// schedule.
		got, err := core.BroadcastTime(n, replay)
		if err != nil {
			t.Fatalf("n=%d: replay failed: %v", n, err)
		}
		if got != rounds {
			t.Errorf("n=%d: replay gives %d rounds, search reported %d", n, got, rounds)
		}
	}
}

func TestBeamSearchBeatsStaticPath(t *testing.T) {
	// With general-tree proposals the search strictly beats the trivial
	// n−1 schedule at n = 8 (t*(T8) >= 10 per the ZSS lower bound, so
	// headroom exists). Wide beams are used to keep this deterministic.
	const n = 8
	best := 0
	for seed := uint64(1); seed <= 4 && best <= bounds.StaticPath(n); seed++ {
		_, rounds := BeamSearch(n, BeamConfig{
			Width: 24, RandomMoves: 6, RandomTrees: 10, Seed: seed,
		})
		if rounds > best {
			best = rounds
		}
	}
	if best <= bounds.StaticPath(n) {
		t.Errorf("n=%d: beam rounds = %d, want > %d", n, best, n-1)
	}
}

func TestBeamSearchN1(t *testing.T) {
	replay, rounds := BeamSearch(1, BeamConfig{})
	if rounds != 0 {
		t.Errorf("n=1 rounds = %d, want 0", rounds)
	}
	if got, err := core.BroadcastTime(1, replay); err != nil || got != 0 {
		t.Errorf("n=1 replay: %d, %v", got, err)
	}
}

// TestBeamSearchBoundedByExactN6 validates the heuristic searches
// against the now-computable exact optimum at n = 6: t*(T6) = 7 (the
// lower-bound formula is tight there, confirmed by the parallel exact
// solver — see EXPERIMENTS.md E7). No beam seed may certify more rounds
// than the game value, and the budgeted deep-line search must reach
// exactly that value.
func TestBeamSearchBoundedByExactN6(t *testing.T) {
	const n, exact = 6, 7 // t*(T6); crossval re-derives this from the solver
	if exact != bounds.Lower(n) {
		t.Fatalf("test constant drifted: bounds.Lower(6) = %d", bounds.Lower(n))
	}
	for seed := uint64(1); seed <= 4; seed++ {
		replay, rounds := BeamSearch(n, BeamConfig{Width: 8, RandomMoves: 3, Seed: seed})
		if rounds > exact {
			t.Errorf("seed %d: beam certifies %d rounds, exact optimum is %d", seed, rounds, exact)
		}
		if got, err := core.BroadcastTime(n, replay); err != nil || got != rounds {
			t.Errorf("seed %d: replay gives %d,%v, search reported %d", seed, got, err, rounds)
		}
	}
	line, depth, err := gamesolver.DeepestLine(n, 6000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if depth != exact {
		t.Errorf("deep-line certifies %d rounds at n=6, exact optimum is %d", depth, exact)
	}
	if got, err := core.BroadcastTime(n, Replay{Trees: line}); err != nil || got < depth {
		t.Errorf("deep-line replay gives %d,%v, want >= %d", got, err, depth)
	}
}

func TestBeamSearchDeterministic(t *testing.T) {
	_, r1 := BeamSearch(6, BeamConfig{Width: 5, RandomMoves: 3, Seed: 7})
	_, r2 := BeamSearch(6, BeamConfig{Width: 5, RandomMoves: 3, Seed: 7})
	if r1 != r2 {
		t.Errorf("same seed gave %d and %d rounds", r1, r2)
	}
}
