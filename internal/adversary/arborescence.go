package adversary

import (
	"math"
	"sort"

	"dyntreecast/internal/core"
	"dyntreecast/internal/tree"
)

const infWeight = math.MaxInt / 4

// MinArborescence computes a minimum-weight spanning arborescence of the
// complete digraph on n vertices, rooted at root, with edge weights
// weight[u][v] for the edge u → v (diagonal entries are ignored). It
// returns the parent array of the arborescence (parent[root] == root).
//
// This is the Chu-Liu/Edmonds algorithm in its recursive dense form:
// select each vertex's cheapest in-edge, contract every cycle those
// selections form, solve the contracted instance, and expand by breaking
// each cycle at the vertex through which the contracted solution enters
// it. O(n²) per contraction level, at most n levels.
func MinArborescence(n, root int, weight [][]int) []int {
	if n == 1 {
		return []int{0}
	}
	parent := solveArb(n, root, weight)
	parent[root] = root
	return parent
}

// solveArb returns, for the m-vertex instance with weights w and root r,
// the chosen in-neighbor of every vertex (entry for r is r).
func solveArb(m, r int, w [][]int) []int {
	pre := make([]int, m)
	pre[r] = r
	for v := 0; v < m; v++ {
		if v == r {
			continue
		}
		best, bu := infWeight, -1
		for u := 0; u < m; u++ {
			if u != v && w[u][v] < best {
				best, bu = w[u][v], u
			}
		}
		pre[v] = bu
	}

	// Find the cycles of the pre function graph. comp[v] >= 0 assigns
	// component ids; cycle components are discovered by walking pre until
	// a repeat within the current walk.
	const (
		unseen = -1
		onPath = -2
	)
	comp := make([]int, m)
	for i := range comp {
		comp[i] = unseen
	}
	numComp := 0
	var cycles [][]int
	comp[r] = numComp
	numComp++
	for v := 0; v < m; v++ {
		if comp[v] != unseen {
			continue
		}
		// Walk up the pre chain marking the path.
		u := v
		for comp[u] == unseen {
			comp[u] = onPath
			u = pre[u]
		}
		if comp[u] == onPath {
			// u is on a fresh cycle; collect it.
			cyc := []int{u}
			comp[u] = numComp
			for x := pre[u]; x != u; x = pre[x] {
				comp[x] = numComp
				cyc = append(cyc, x)
			}
			numComp++
			cycles = append(cycles, cyc)
		}
		// Remaining on-path vertices become singleton components.
		for x := v; comp[x] == onPath; x = pre[x] {
			comp[x] = numComp
			numComp++
		}
	}

	if len(cycles) == 0 {
		return pre
	}

	// Contract: build the reduced instance. For an edge (u, v) entering a
	// cycle vertex v, the adjusted weight discounts the cycle edge it
	// would displace.
	inCycle := make([]bool, m)
	for _, cyc := range cycles {
		for _, v := range cyc {
			inCycle[v] = true
		}
	}
	w2 := make([][]int, numComp)
	eu := make([][]int, numComp) // this-level endpoints achieving w2
	ev := make([][]int, numComp)
	for i := 0; i < numComp; i++ {
		w2[i] = make([]int, numComp)
		eu[i] = make([]int, numComp)
		ev[i] = make([]int, numComp)
		for j := 0; j < numComp; j++ {
			w2[i][j] = infWeight
			eu[i][j] = -1
			ev[i][j] = -1
		}
	}
	for u := 0; u < m; u++ {
		for v := 0; v < m; v++ {
			if u == v || comp[u] == comp[v] {
				continue
			}
			adj := w[u][v]
			if adj >= infWeight {
				continue
			}
			if inCycle[v] {
				adj -= w[pre[v]][v]
			}
			cu, cv := comp[u], comp[v]
			if adj < w2[cu][cv] {
				w2[cu][cv] = adj
				eu[cu][cv] = u
				ev[cu][cv] = v
			}
		}
	}

	sub := solveArb(numComp, comp[r], w2)

	// Expand: cycle edges survive except at each cycle's entry vertex;
	// every component's entry vertex gets the original endpoints of the
	// contracted edge the recursion chose.
	parent := make([]int, m)
	copy(parent, pre)
	for cv := 0; cv < numComp; cv++ {
		if cv == comp[r] {
			continue
		}
		cu := sub[cv]
		u, v := eu[cu][cv], ev[cu][cv]
		parent[v] = u
	}
	return parent
}

// ArborescenceCost sums weight[parent[v]][v] over non-root vertices.
func ArborescenceCost(parent []int, weight [][]int) int {
	total := 0
	for v, p := range parent {
		if p != v {
			total += weight[p][v]
		}
	}
	return total
}

// MinGain plays, each round, a spanning arborescence that minimizes the
// total number of new product-graph edges created this round. The weight
// of edge p → y is |K_p \ K_y| — exactly the knowledge process y would
// gain from parent p — and a minimum arborescence over these weights is
// computed with Chu-Liu/Edmonds for each of a few candidate roots (the
// vertices whose cheapest in-edge is most expensive, since making a vertex
// the root "saves" its in-edge cost).
//
// §2 of the paper proves at least one new edge appears per round while
// broadcast is incomplete, so even this adversary cannot stall forever;
// how close it keeps the per-round gain to that minimum of 1 is measured
// in the matrix-evolution experiment (E8).
type MinGain struct {
	// Roots is the number of candidate roots to try; 0 means 4.
	Roots int
}

// Next implements core.Adversary.
func (a MinGain) Next(v core.View) *tree.Tree {
	n := v.N()
	if n == 1 {
		return tree.MustNew([]int{0})
	}
	weight := make([][]int, n)
	for u := 0; u < n; u++ {
		weight[u] = make([]int, n)
		ku := v.Heard(u)
		for y := 0; y < n; y++ {
			if u == y {
				continue
			}
			weight[u][y] = ku.DifferenceCount(v.Heard(y))
		}
	}

	// Candidate roots: vertices whose cheapest in-edge is most expensive.
	minIn := make([]int, n)
	for y := 0; y < n; y++ {
		best := infWeight
		for u := 0; u < n; u++ {
			if u != y && weight[u][y] < best {
				best = weight[u][y]
			}
		}
		minIn[y] = best
	}
	cands := make([]int, n)
	for i := range cands {
		cands[i] = i
	}
	sort.SliceStable(cands, func(a, b int) bool { return minIn[cands[a]] > minIn[cands[b]] })
	k := a.Roots
	if k <= 0 {
		k = 4
	}
	if k > n {
		k = n
	}

	bestCost := infWeight
	var bestParent []int
	for _, r := range cands[:k] {
		parent := MinArborescence(n, r, weight)
		if c := ArborescenceCost(parent, weight); c < bestCost {
			bestCost = c
			bestParent = parent
		}
	}
	t, err := tree.New(bestParent)
	if err != nil {
		// Unreachable: MinArborescence returns a valid parent array on a
		// complete weight matrix.
		panic(err)
	}
	return t
}

var _ core.Adversary = MinGain{}
