package adversary

import (
	"testing"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
)

func TestStaleAscendingPathValidation(t *testing.T) {
	if _, err := NewStaleAscendingPath(-1); err == nil {
		t.Error("negative lag accepted")
	}
	if _, err := NewStaleAscendingPath(0); err != nil {
		t.Errorf("lag 0 rejected: %v", err)
	}
}

// TestStaleLagZeroMatchesAscendingPath: with no delay the stale adversary
// must be AscendingPath move for move. Two engines run in lockstep; every
// round both adversaries are asked for their tree and the parent arrays
// must agree.
func TestStaleLagZeroMatchesAscendingPath(t *testing.T) {
	for _, n := range []int{2, 5, 9, 16, 33} {
		stale, err := NewStaleAscendingPath(0)
		if err != nil {
			t.Fatal(err)
		}
		ref := AscendingPath{}
		eng := core.NewEngine(n)
		for round := 0; !eng.BroadcastDone() && round <= n*n; round++ {
			want := ref.Next(eng)
			got := stale.Next(eng)
			for y := 0; y < n; y++ {
				if want.Parent(y) != got.Parent(y) {
					t.Fatalf("n=%d round %d: stale(0) parent[%d]=%d, AscendingPath %d",
						n, round, y, got.Parent(y), want.Parent(y))
				}
			}
			eng.Step(want)
		}
	}
}

// TestStaleAscendingPathCompletesWithinBounds: lagged information still
// yields a valid adversary — every run completes, never beats the static
// floor from below... (it may; staleness can only weaken the heuristic's
// stalling, and a weaker adversary is still a valid one) — and never
// exceeds the paper's upper bound.
func TestStaleAscendingPathCompletesWithinBounds(t *testing.T) {
	for _, n := range []int{4, 9, 16, 32} {
		for _, lag := range []int{1, 2, 5, 50} {
			adv, err := NewStaleAscendingPath(lag)
			if err != nil {
				t.Fatal(err)
			}
			rounds, err := core.BroadcastTime(n, adv)
			if err != nil {
				t.Fatalf("n=%d lag=%d: %v", n, lag, err)
			}
			if rounds < 1 {
				t.Errorf("n=%d lag=%d: completed in %d rounds", n, lag, rounds)
			}
			if err := bounds.CheckSandwich(n, rounds); err != nil {
				t.Errorf("n=%d lag=%d: %v", n, lag, err)
			}
		}
	}
}

// TestStaleAscendingPathReusable: one instance driven across several
// trials (the batched pipeline's lifecycle) must match a freshly built
// adversary per trial.
func TestStaleAscendingPathReusable(t *testing.T) {
	const n, lag = 12, 3
	pooled, err := NewStaleAscendingPath(lag)
	if err != nil {
		t.Fatal(err)
	}
	runner := core.NewRunner()
	for trial := 0; trial < 4; trial++ {
		fresh, err := NewStaleAscendingPath(lag)
		if err != nil {
			t.Fatal(err)
		}
		want, errA := core.BroadcastTime(n, fresh)
		pooled.Reset(nil)
		got, errB := runner.BroadcastTime(n, pooled)
		if errA != nil || errB != nil || want != got {
			t.Fatalf("trial %d: fresh %d (%v), pooled %d (%v)", trial, want, errA, got, errB)
		}
	}
}
