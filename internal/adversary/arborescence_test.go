package adversary

import (
	"testing"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// bruteMinCost finds the minimum arborescence cost rooted at root by
// enumerating all rooted labeled trees on n vertices.
func bruteMinCost(n, root int, weight [][]int) int {
	best := infWeight
	tree.Enumerate(n, func(tr *tree.Tree) bool {
		if tr.Root() != root {
			return true
		}
		if c := ArborescenceCost(tr.Parents(), weight); c < best {
			best = c
		}
		return true
	})
	return best
}

func randomWeights(n int, src *rng.Source) [][]int {
	w := make([][]int, n)
	for u := range w {
		w[u] = make([]int, n)
		for v := range w[u] {
			if u != v {
				w[u][v] = src.Intn(10)
			}
		}
	}
	return w
}

func TestMinArborescenceMatchesBruteForce(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{2, 3, 4, 5} {
		for trial := 0; trial < 20; trial++ {
			w := randomWeights(n, src)
			for root := 0; root < n; root++ {
				parent := MinArborescence(n, root, w)
				tr, err := tree.New(parent)
				if err != nil {
					t.Fatalf("n=%d root=%d: invalid arborescence %v: %v", n, root, parent, err)
				}
				if tr.Root() != root {
					t.Fatalf("n=%d: arborescence rooted at %d, want %d", n, tr.Root(), root)
				}
				got := ArborescenceCost(parent, w)
				want := bruteMinCost(n, root, w)
				if got != want {
					t.Fatalf("n=%d root=%d trial=%d: cost %d, brute force %d (weights %v)",
						n, root, trial, got, want, w)
				}
			}
		}
	}
}

func TestMinArborescenceForcesCycleContraction(t *testing.T) {
	// Craft weights where greedy min in-edges form a 2-cycle {1,2} that
	// must be broken: cheap edges 1→2 and 2→1, expensive entry from root.
	w := [][]int{
		{0, 5, 6},
		{9, 0, 1},
		{9, 1, 0},
	}
	parent := MinArborescence(3, 0, w)
	got := ArborescenceCost(parent, w)
	want := bruteMinCost(3, 0, w)
	if got != want {
		t.Fatalf("cost %d, want %d (parent %v)", got, want, parent)
	}
}

func TestMinArborescenceSingleVertex(t *testing.T) {
	parent := MinArborescence(1, 0, [][]int{{0}})
	if len(parent) != 1 || parent[0] != 0 {
		t.Errorf("parent = %v, want [0]", parent)
	}
}

func TestMinArborescenceNestedCycles(t *testing.T) {
	// Larger adversarial instance with several cheap cycles; verify
	// against brute force at n=5 across many seeds.
	src := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		n := 5
		w := make([][]int, n)
		for u := range w {
			w[u] = make([]int, n)
			for v := range w[u] {
				if u != v {
					// Mostly 0/1 weights to generate lots of ties and
					// cycles.
					w[u][v] = src.Intn(2)
				}
			}
		}
		parent := MinArborescence(n, 0, w)
		if _, err := tree.New(parent); err != nil {
			t.Fatalf("trial %d: invalid result %v: %v", trial, parent, err)
		}
		if got, want := ArborescenceCost(parent, w), bruteMinCost(n, 0, w); got != want {
			t.Fatalf("trial %d: cost %d, want %d", trial, got, want)
		}
	}
}

func TestMinGainWithinBounds(t *testing.T) {
	for _, n := range []int{2, 6, 16, 40} {
		got, err := core.BroadcastTime(n, MinGain{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := bounds.CheckSandwich(n, got); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestMinGainAddsFewEdges(t *testing.T) {
	// MinGain should keep per-round knowledge growth near the provable
	// minimum of one new edge per round.
	const n = 12
	e := core.NewEngine(n)
	adv := MinGain{}
	prevEdges := n // identity
	for r := 0; r < 3*n && !e.BroadcastDone(); r++ {
		e.Step(adv.Next(e))
		edges := e.Matrix().EdgeCount()
		if edges-prevEdges < 1 && !e.BroadcastDone() {
			t.Fatalf("round %d: no new edge (%d -> %d)", r+1, prevEdges, edges)
		}
		prevEdges = edges
	}
	if !e.BroadcastDone() {
		t.Fatalf("MinGain run did not finish in %d rounds", 3*n)
	}
}

func TestMinGainN1(t *testing.T) {
	got, err := core.BroadcastTime(1, MinGain{})
	if err != nil || got != 0 {
		t.Errorf("n=1: t* = %d err = %v", got, err)
	}
}

func BenchmarkMinArborescence(b *testing.B) {
	src := rng.New(3)
	for _, n := range []int{16, 64} {
		name := map[int]string{16: "n16", 64: "n64"}[n]
		b.Run(name, func(b *testing.B) {
			w := randomWeights(n, src)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = MinArborescence(n, 0, w)
			}
		})
	}
}
