// Package adversary implements the tree-choosing strategies of the
// broadcast game.
//
// The paper's t*(Tn) is a maximum over all adversaries; a simulator can
// only exhibit particular adversaries, each of which yields a lower bound
// on t*(Tn). The package provides three strata:
//
//   - Oblivious schedules: Static, Cycle, Replay, the random families
//     (Random, RandomPath), and the restricted families (KLeaves, KInner)
//     that reproduce the Zeiner et al. O(kn) regimes.
//   - Adaptive heuristics that inspect the knowledge state each round:
//     AscendingPath (feed the ignorant first), BlockLeader (starve the
//     most-spread value), and MinGain (a minimum-weight arborescence per
//     round via Chu-Liu/Edmonds, minimizing the number of new product-graph
//     edges).
//   - Search: BeamSearch explores tree sequences offline and returns the
//     best schedule found as a Replay.
//
// All adversaries are deterministic given their inputs (random ones take an
// explicit rng.Source), so every experiment in this repository reproduces
// bit-for-bit from seeds.
//
// Paper anchors: the portfolio feeds the best-measured curves of Figure 1
// (experiment E1) and the Theorem 3.1 sandwich checks (E2); the static
// path realizes the §2 equality t* = n−1 (E3); KLeaves/KInner reproduce
// the Zeiner et al. restricted regimes (E5); and the adaptive heuristics
// drive the matrix-evolution traces of E8.
package adversary

import (
	"fmt"

	"dyntreecast/internal/bitset"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// Func adapts a function to core.Adversary.
type Func func(core.View) *tree.Tree

// Next implements core.Adversary.
func (f Func) Next(v core.View) *tree.Tree { return f(v) }

var _ core.Adversary = (Func)(nil)

// Static plays the same tree every round — the §2 baseline (a static path
// yields t* = n−1).
type Static struct{ Tree *tree.Tree }

// Next implements core.Adversary.
func (s Static) Next(core.View) *tree.Tree { return s.Tree }

var _ core.Adversary = Static{}

// Cycle plays a finite schedule repeatedly: round i uses Trees[i mod len].
type Cycle struct{ Trees []*tree.Tree }

// Next implements core.Adversary.
func (c Cycle) Next(v core.View) *tree.Tree {
	if len(c.Trees) == 0 {
		return nil
	}
	return c.Trees[v.Round()%len(c.Trees)]
}

var _ core.Adversary = Cycle{}

// Replay plays a finite schedule once and then repeats its last tree
// forever. This is how offline-search results are fed back into the
// engine: the searched prefix is what matters, and repeating the final
// tree guarantees termination (any fixed rooted tree completes broadcast).
type Replay struct{ Trees []*tree.Tree }

// Next implements core.Adversary.
func (r Replay) Next(v core.View) *tree.Tree {
	if len(r.Trees) == 0 {
		return nil
	}
	if i := v.Round(); i < len(r.Trees) {
		return r.Trees[i]
	}
	return r.Trees[len(r.Trees)-1]
}

var _ core.Adversary = Replay{}

// reachSets materializes the reach sets R_x (rows of the adjacency matrix)
// from a view's heard sets (columns): y ∈ R_x iff x ∈ K_y. O(n²) bit ops.
func reachSets(v core.View) []*bitset.Set {
	n := v.N()
	rows := make([]*bitset.Set, n)
	for x := 0; x < n; x++ {
		rows[x] = bitset.New(n)
	}
	for y := 0; y < n; y++ {
		v.Heard(y).ForEach(func(x int) bool {
			rows[x].Set(y)
			return true
		})
	}
	return rows
}

// heardCounts returns |K_y| for every y.
func heardCounts(v core.View) []int {
	n := v.N()
	out := make([]int, n)
	for y := 0; y < n; y++ {
		out[y] = v.Heard(y).Count()
	}
	return out
}

// validateN panics if the adversary was constructed for a different n than
// the engine it is driving. Used by adaptive adversaries that precompute
// n-sized scratch state. The panic marks a programmer error in direct
// library use; every construction path reachable from user input (campaign
// specs, campaignd requests) goes through error-returning constructors
// such as NewTwoPhasePath, which validate before the engine ever steps.
func validateN(want, got int) {
	if want != got {
		panic(fmt.Sprintf("adversary: built for n=%d, driven with n=%d", want, got))
	}
}

// Random plays an independent uniformly random rooted tree each round.
type Random struct{ Src *rng.Source }

// Next implements core.Adversary.
func (r Random) Next(v core.View) *tree.Tree { return tree.Random(v.N(), r.Src) }

var _ core.Adversary = Random{}

// RandomPath plays an independent uniformly random directed path each
// round.
type RandomPath struct{ Src *rng.Source }

// Next implements core.Adversary.
func (r RandomPath) Next(v core.View) *tree.Tree { return tree.RandomPath(v.N(), r.Src) }

var _ core.Adversary = RandomPath{}

// KLeaves plays random trees with exactly K leaves — the k-leaf restricted
// adversary class of Zeiner et al., for which broadcast time is O(k·n).
type KLeaves struct {
	K   int
	Src *rng.Source
}

// Next implements core.Adversary. It returns nil (failing the run) if K is
// infeasible for the engine's n.
func (a KLeaves) Next(v core.View) *tree.Tree {
	t, err := tree.RandomWithLeaves(v.N(), a.K, a.Src)
	if err != nil {
		return nil
	}
	return t
}

var _ core.Adversary = KLeaves{}

// KInner plays random trees with exactly K inner nodes — the k-inner-node
// restricted adversary class of Zeiner et al.
type KInner struct {
	K   int
	Src *rng.Source
}

// Next implements core.Adversary. It returns nil (failing the run) if K is
// infeasible for the engine's n.
func (a KInner) Next(v core.View) *tree.Tree {
	t, err := tree.RandomWithInner(v.N(), a.K, a.Src)
	if err != nil {
		return nil
	}
	return t
}

var _ core.Adversary = KInner{}
