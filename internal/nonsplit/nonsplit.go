// Package nonsplit implements the broadcast game when the adversary is
// restricted to nonsplit graphs — the §5 extension the paper proposes
// ("the setting where the adversary is bound to nonsplit graphs"), and
// the regime behind the previous best bound: Függer–Nowak–Winkler show
// broadcast under nonsplit adversaries takes O(log log n) rounds, and
// combining with the Charron-Bost–Függer–Nowak simulation lemma (n−1
// rooted-tree rounds contain a nonsplit round) gave the pre-paper
// O(n log log n) bound for dynamic rooted trees.
//
// Unlike rooted trees, a nonsplit round graph may have arbitrary edge
// structure as long as every pair of vertices shares an in-neighbor, so
// the engine here composes full product graphs rather than applying
// parent arrays. Each round returned by an adversary is validated for
// nonsplitness — a non-compliant adversary fails the run, mirroring how
// the restriction is part of the game's rules.
package nonsplit

import (
	"errors"
	"fmt"

	"dyntreecast/internal/bitset"
	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/graph"
	"dyntreecast/internal/rng"
)

// Adversary chooses a nonsplit round graph given the current knowledge
// state (the adjacency matrix of G(t)).
type Adversary interface {
	// Next returns the digraph for round round+1 given the current
	// product graph m. The result must be nonsplit and on m.N() vertices.
	Next(round int, m *boolmat.Matrix) *graph.Digraph
}

// Sentinel errors.
var (
	// ErrNotNonsplit reports an adversary returning a graph that violates
	// the nonsplit restriction.
	ErrNotNonsplit = errors.New("nonsplit: adversary returned a split graph")
	// ErrMaxRounds reports an exhausted round budget.
	ErrMaxRounds = errors.New("nonsplit: max rounds exceeded")
)

// Time runs the broadcast game under a nonsplit-restricted adversary and
// returns the number of rounds until some vertex's value has reached
// everyone. maxRounds <= 0 means the F-N-W-safe default of
// 4·⌈log₂ log₂ n⌉ + 16.
func Time(n int, adv Adversary, maxRounds int) (int, error) {
	if n < 1 {
		panic(fmt.Sprintf("nonsplit: Time needs n >= 1, got %d", n))
	}
	if maxRounds <= 0 {
		maxRounds = defaultBudget(n)
	}
	m := boolmat.Identity(n)
	for round := 1; round <= maxRounds; round++ {
		if m.HasFullRow() {
			return round - 1, nil
		}
		g := adv.Next(round-1, m)
		if g == nil || g.N() != n {
			return round - 1, fmt.Errorf("nonsplit: round %d: adversary returned an invalid graph", round)
		}
		if !g.IsNonsplit() {
			return round - 1, fmt.Errorf("%w: round %d", ErrNotNonsplit, round)
		}
		m = m.Product(g.Matrix())
	}
	if m.HasFullRow() {
		return maxRounds, nil
	}
	return maxRounds, fmt.Errorf("%w: %d", ErrMaxRounds, maxRounds)
}

// defaultBudget is a generous multiple of the F-N-W O(log log n) bound.
func defaultBudget(n int) int {
	ll := 0
	for v := n; v > 1; v >>= 1 {
		ll++
	} // ll = ceil(log2 n)
	l2 := 0
	for v := ll; v > 1; v >>= 1 {
		l2++
	} // l2 ~ log2 log2 n
	return 4*(l2+1) + 16
}

// Kernel plays a random nonsplit graph with a universal kernel vertex and
// extra density P. Broadcast completes in one round (the kernel reaches
// everyone), making this the baseline degenerate family.
type Kernel struct {
	P   float64
	Src *rng.Source
}

// Next implements Adversary.
func (k Kernel) Next(_ int, m *boolmat.Matrix) *graph.Digraph {
	return graph.RandomNonsplit(m.N(), k.P, k.Src)
}

var _ Adversary = Kernel{}

// RandomCover plays nonsplit graphs built by covering each vertex pair
// with a uniformly random witness: for every pair {u, v}, one random z
// receives edges z → u and z → v. No vertex is universal (for n ≥ 3, with
// overwhelming probability), so broadcast takes more than one round —
// this family probes the O(log log n) regime.
type RandomCover struct{ Src *rng.Source }

// Next implements Adversary.
func (r RandomCover) Next(_ int, m *boolmat.Matrix) *graph.Digraph {
	n := m.N()
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			z := r.Src.Intn(n)
			g.AddEdge(z, u)
			g.AddEdge(z, v)
		}
	}
	return g
}

var _ Adversary = RandomCover{}

// LazyCover is the adaptive stalling heuristic: it covers each pair with
// the witness whose knowledge would leak the least into the pair,
// weighting leaks to widely-spread values more, and balancing witness
// reuse so that no vertex drifts toward universality (a universal vertex
// would end the game in one round). This is the natural transplant of the
// MinGain idea into the nonsplit game.
type LazyCover struct{}

// Next implements Adversary.
func (LazyCover) Next(_ int, m *boolmat.Matrix) *graph.Digraph {
	n := m.N()
	g := graph.New(n)
	cols := make([]*bitset.Set, n)
	for y := 0; y < n; y++ {
		g.AddEdge(y, y)
		cols[y] = m.Column(y)
	}
	reach := m.RowCounts()
	// leak(z, y): weighted knowledge y would gain from in-neighbor z.
	leak := func(z, y int) int {
		if z == y || g.HasEdge(z, y) {
			return 0 // edge already present: no marginal leak
		}
		w := 0
		cols[z].ForEach(func(x int) bool {
			if !cols[y].Test(x) {
				w += 1 + reach[x]*reach[x]
			}
			return true
		})
		return w
	}
	// used[z] counts edges already charged to witness z this round; the
	// quadratic reuse term spreads the cover so no witness becomes
	// universal.
	used := make([]int, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			bestZ, bestW := -1, 0
			for z := 0; z < n; z++ {
				w := leak(z, u) + leak(z, v) + used[z]*used[z]
				if bestZ < 0 || w < bestW {
					bestZ, bestW = z, w
				}
			}
			g.AddEdge(bestZ, u)
			g.AddEdge(bestZ, v)
			used[bestZ] += 2
		}
	}
	return g
}

var _ Adversary = LazyCover{}
