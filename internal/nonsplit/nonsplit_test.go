package nonsplit

import (
	"errors"
	"testing"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/graph"
	"dyntreecast/internal/rng"
)

func TestKernelCompletesInOneRound(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{2, 8, 64} {
		rounds, err := Time(n, Kernel{P: 0, Src: src}, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds != 1 {
			t.Errorf("n=%d: kernel broadcast = %d rounds, want 1", n, rounds)
		}
	}
}

func TestTimeN1(t *testing.T) {
	src := rng.New(1)
	rounds, err := Time(1, Kernel{Src: src}, 0)
	if err != nil || rounds != 0 {
		t.Errorf("n=1: rounds=%d err=%v, want 0 rounds", rounds, err)
	}
}

func TestRandomCoverIsNonsplitAndFast(t *testing.T) {
	// The whole point of the F-N-W regime: broadcast under nonsplit
	// adversaries takes a tiny number of rounds even for large n —
	// contrast with the linear t* of rooted trees.
	src := rng.New(2)
	for _, n := range []int{4, 16, 64, 256} {
		rounds, err := Time(n, RandomCover{Src: src}, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds < 1 {
			t.Errorf("n=%d: rounds = %d", n, rounds)
		}
		if rounds > defaultBudget(n) {
			t.Errorf("n=%d: rounds = %d exceeds the log-log budget %d", n, rounds, defaultBudget(n))
		}
	}
}

func TestRandomCoverGraphsAreNonsplit(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		g := (RandomCover{Src: src}).Next(0, boolmat.Identity(9))
		if !g.IsNonsplit() {
			t.Fatal("RandomCover produced a split graph")
		}
	}
}

func TestLazyCoverStallsLongerThanRandomCover(t *testing.T) {
	// The adaptive stalling heuristic should do at least as well as the
	// oblivious random cover (and must stay within the log-log budget).
	src := rng.New(4)
	for _, n := range []int{8, 32, 128} {
		lazy, err := Time(n, LazyCover{}, 0)
		if err != nil {
			t.Fatalf("lazy n=%d: %v", n, err)
		}
		rnd, err := Time(n, RandomCover{Src: src}, 0)
		if err != nil {
			t.Fatalf("random n=%d: %v", n, err)
		}
		if lazy < rnd {
			t.Errorf("n=%d: lazy cover (%d) stalls less than random cover (%d)", n, lazy, rnd)
		}
	}
}

func TestLazyCoverGraphsAreNonsplit(t *testing.T) {
	m := boolmat.Identity(7)
	g := (LazyCover{}).Next(0, m)
	if !g.IsNonsplit() {
		t.Fatal("LazyCover produced a split graph")
	}
}

// splitAdversary violates the restriction (path graph is split).
type splitAdversary struct{}

func (splitAdversary) Next(_ int, m *boolmat.Matrix) *graph.Digraph {
	g := graph.New(m.N())
	for v := 0; v < m.N(); v++ {
		g.AddEdge(v, v)
	}
	return g // self-loops only: pairs share no in-neighbor
}

func TestSplitAdversaryRejected(t *testing.T) {
	_, err := Time(4, splitAdversary{}, 10)
	if !errors.Is(err, ErrNotNonsplit) {
		t.Fatalf("err = %v, want ErrNotNonsplit", err)
	}
}

// nilAdversary returns nil.
type nilAdversary struct{}

func (nilAdversary) Next(int, *boolmat.Matrix) *graph.Digraph { return nil }

func TestNilAdversaryRejected(t *testing.T) {
	if _, err := Time(4, nilAdversary{}, 10); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// stallForever is compliant but there is no way to stall nonsplit
// broadcast past the budget — use a tiny budget to exercise ErrMaxRounds.
func TestMaxRoundsSurfaced(t *testing.T) {
	// With budget 0 rounds... budget is clamped to default; use a split
	// scenario instead: LazyCover with budget 0 is fine, so force the
	// error by running RandomCover on a large n with budget 1 — if it
	// finishes in one round there is nothing to report, so pick the
	// slowest family and accept either outcome but require a clean error
	// type when the budget trips.
	src := rng.New(5)
	rounds, err := Time(256, RandomCover{Src: src}, 1)
	if err != nil {
		if !errors.Is(err, ErrMaxRounds) {
			t.Fatalf("unexpected error type: %v", err)
		}
		if rounds != 1 {
			t.Errorf("partial rounds = %d, want 1", rounds)
		}
	}
}

func TestDefaultBudgetGrowsSlowly(t *testing.T) {
	// The budget is Θ(log log n): it should grow by only a few rounds
	// over two orders of magnitude.
	if d := defaultBudget(1 << 16); d-defaultBudget(4) > 16 {
		t.Errorf("budget grew too fast: %d vs %d", defaultBudget(4), d)
	}
}

func BenchmarkRandomCoverBroadcast(b *testing.B) {
	for _, n := range []int{32, 128} {
		name := map[int]string{32: "n32", 128: "n128"}[n]
		b.Run(name, func(b *testing.B) {
			src := rng.New(1)
			var rounds int
			for i := 0; i < b.N; i++ {
				var err error
				rounds, err = Time(n, RandomCover{Src: src}, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds), "t*")
		})
	}
}
