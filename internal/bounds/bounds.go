// Package bounds provides the closed-form broadcast-time bounds of
// Figure 1 and Theorem 3.1 of the paper, plus sandwich checks used by
// tests, benches, and the experiment harness.
//
// All bounds are stated for the number of processes n ≥ 1 and concern
// t*(Tn), the worst-case broadcast time over dynamic rooted trees.
package bounds

import (
	"fmt"
	"math"
)

// Trivial returns the n² bound of §2: at least one new edge appears in the
// product graph per round, and n² edges suffice.
func Trivial(n int) int { return n * n }

// NLogN returns the ⌈n·log₂ n⌉ bound curve implied by Charron-Bost–Schiper
// (2009) and Charron-Bost–Függer–Nowak (2015). The paper states it as
// "n log n"; base 2 is the convention used throughout this repository.
func NLogN(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(float64(n) * math.Log2(float64(n))))
}

// NLogLogN returns the ⌈2n·log₂log₂ n⌉ leading term of the Függer–Nowak–
// Winkler (2020) bound 2n·log log n + O(n). The additive O(n) term is
// deliberately omitted; callers comparing curves should treat this as the
// asymptotic shape, not a pointwise guarantee for tiny n.
func NLogLogN(n int) int {
	if n <= 2 {
		return 0
	}
	ll := math.Log2(math.Log2(float64(n)))
	if ll < 0 {
		ll = 0
	}
	return int(math.Ceil(2 * float64(n) * ll))
}

// UpperLinear returns ⌈(1+√2)·n − 1⌉, the paper's new linear upper bound
// on t*(Tn) (Theorem 3.1).
func UpperLinear(n int) int {
	if n < 1 {
		return 0
	}
	return int(math.Ceil((1+math.Sqrt2)*float64(n) - 1))
}

// Lower returns ⌈(3n−1)/2⌉ − 2, the Zeiner–Schwarz–Schmid lower bound on
// t*(Tn), clamped at the trivially valid 0 for tiny n.
func Lower(n int) int {
	if n < 2 {
		return 0
	}
	// For integer n, ⌈(3n−1)/2⌉ = ⌊3n/2⌋.
	v := 3*n/2 - 2
	if v < 0 {
		return 0
	}
	return v
}

// StaticPath returns n−1, the broadcast time of the static path (§2) and
// the trivial lower bound for any adversary that may play paths.
func StaticPath(n int) int {
	if n < 1 {
		return 0
	}
	return n - 1
}

// RestrictedLeaves returns the O(k·n) bound curve of Zeiner et al. for
// adversaries restricted to trees with exactly k leaves. The constant is 1
// (curve shape, not a pointwise guarantee).
func RestrictedLeaves(n, k int) int { return k * n }

// RestrictedInner returns the O(k·n) bound curve for adversaries
// restricted to trees with exactly k inner nodes.
func RestrictedInner(n, k int) int { return k * n }

// CheckSandwich verifies Theorem 3.1 against a measured broadcast time:
// any achievable t* must satisfy t ≤ UpperLinear(n), and measured times
// below the static-path floor n−1 indicate the adversary is weaker than
// the trivial one (allowed, but worth distinguishing). It returns an error
// only when the paper's upper bound is violated — that would falsify
// Theorem 3.1 (or reveal a simulator bug).
func CheckSandwich(n, tstar int) error {
	if ub := UpperLinear(n); tstar > ub {
		return fmt.Errorf("bounds: measured t* = %d exceeds upper bound %d for n = %d: Theorem 3.1 violated", tstar, ub, n)
	}
	return nil
}

// TheoremHolds reports whether lower ≤ upper for the given n — the
// consistency of Theorem 3.1's sandwich itself.
func TheoremHolds(n int) bool { return Lower(n) <= UpperLinear(n) }
