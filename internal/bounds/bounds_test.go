package bounds

import (
	"testing"
	"testing/quick"
)

func TestLowerKnownValues(t *testing.T) {
	// ⌈(3n−1)/2⌉ − 2 from the paper.
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 4}, {5, 5}, {6, 7}, {10, 13}, {100, 148},
	}
	for _, tt := range tests {
		if got := Lower(tt.n); got != tt.want {
			t.Errorf("Lower(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestUpperLinearKnownValues(t *testing.T) {
	// ⌈(1+√2)n − 1⌉ ≈ 2.414n − 1.
	tests := []struct{ n, want int }{
		{1, 2}, {2, 4}, {3, 7}, {4, 9}, {10, 24}, {100, 241},
	}
	for _, tt := range tests {
		if got := UpperLinear(tt.n); got != tt.want {
			t.Errorf("UpperLinear(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestTrivialAndStaticPath(t *testing.T) {
	if got := Trivial(7); got != 49 {
		t.Errorf("Trivial(7) = %d", got)
	}
	if got := StaticPath(7); got != 6 {
		t.Errorf("StaticPath(7) = %d", got)
	}
	if got := StaticPath(0); got != 0 {
		t.Errorf("StaticPath(0) = %d", got)
	}
}

func TestNLogN(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 2}, {4, 8}, {8, 24}, {16, 64},
	}
	for _, tt := range tests {
		if got := NLogN(tt.n); got != tt.want {
			t.Errorf("NLogN(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestNLogLogN(t *testing.T) {
	if got := NLogLogN(2); got != 0 {
		t.Errorf("NLogLogN(2) = %d, want 0", got)
	}
	if got := NLogLogN(4); got != 8 {
		t.Errorf("NLogLogN(4) = %d, want 8 (2·4·log2 log2 4 = 8)", got)
	}
	if got := NLogLogN(16); got != 64 {
		t.Errorf("NLogLogN(16) = %d, want 64 (2·16·2)", got)
	}
}

func TestRestricted(t *testing.T) {
	if got := RestrictedLeaves(10, 3); got != 30 {
		t.Errorf("RestrictedLeaves(10,3) = %d", got)
	}
	if got := RestrictedInner(10, 4); got != 40 {
		t.Errorf("RestrictedInner(10,4) = %d", got)
	}
}

func TestCheckSandwich(t *testing.T) {
	if err := CheckSandwich(10, 13); err != nil {
		t.Errorf("valid t* rejected: %v", err)
	}
	if err := CheckSandwich(10, 24); err != nil {
		t.Errorf("t* equal to upper bound rejected: %v", err)
	}
	if err := CheckSandwich(10, 25); err == nil {
		t.Error("t* above upper bound accepted")
	}
}

func TestPropertySandwichConsistent(t *testing.T) {
	// Theorem 3.1's own consistency: lower ≤ upper for all n, and the
	// static path value n−1 lies within the sandwich for n ≥ 2.
	f := func(m uint16) bool {
		n := 1 + int(m)%5000
		if !TheoremHolds(n) {
			return false
		}
		if n >= 2 && StaticPath(n) > UpperLinear(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBoundOrderingLargeN(t *testing.T) {
	// For large n the Figure 1 regimes are strictly ordered:
	// linear < n log log n < n log n < n².
	f := func(m uint16) bool {
		n := 256 + int(m)%5000
		return UpperLinear(n) < NLogLogN(n) &&
			NLogLogN(n) < NLogN(n) &&
			NLogN(n) < Trivial(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLowerMonotone(t *testing.T) {
	f := func(m uint16) bool {
		n := 2 + int(m)%5000
		return Lower(n+1) >= Lower(n) && UpperLinear(n+1) >= UpperLinear(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
