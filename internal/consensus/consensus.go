// Package consensus implements FloodMin, the canonical flooding consensus
// protocol, on top of the dynamic-rooted-tree broadcast engine.
//
// The paper's introduction notes the "intriguing connections" between
// broadcast and consensus, and its related-work section traces the
// heard-of model of Charron-Bost and Schiper; this package makes the
// connection executable. Each process proposes a value; knowledge spreads
// exactly as in the broadcast model; a process decides the minimum
// proposal among all n processes as soon as it has heard from everyone
// (its heard set is full), at which point that minimum is fully
// determined.
//
// Properties (tested in this package):
//
//   - Validity: every decision is some process's proposal.
//   - Agreement: all decisions are equal (trivially, min over all
//     proposals — the decision rule never acts on partial information).
//   - Irrevocability: a decided process never changes its decision.
//   - Termination: equivalent to gossip completion, hence guaranteed
//     under oblivious random adversaries but NOT against adaptive
//     adversaries (the gossip staller also stalls FloodMin forever) —
//     a concrete face of the consensus impossibility discussions in the
//     heard-of literature.
//
// The deliberately unsafe variant EagerFloodMin decides as soon as a
// process has heard a majority; FindDisagreement exhibits adversary
// schedules under which eager deciders split — the demonstration of why
// the full-information rule is needed in this adversarial model.
package consensus

import (
	"errors"
	"fmt"

	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// Result reports a FloodMin run.
type Result struct {
	// Decision is the common decided value (valid only if Terminated).
	Decision int
	// Rounds is the round at which the LAST process decided.
	Rounds int
	// FirstDecision is the round at which the first process decided.
	FirstDecision int
	// Terminated reports whether every process decided within budget.
	Terminated bool
}

// ErrNoProposals is returned when proposals is empty or mismatched.
var ErrNoProposals = errors.New("consensus: need exactly n proposals")

// FloodMin runs the protocol under adv until every process has decided,
// or the round budget (core.WithMaxRounds, default n²+1) is exhausted —
// in which case it returns the partial result and an error wrapping
// core.ErrMaxRounds, since adaptive adversaries can prevent termination.
func FloodMin(proposals []int, adv core.Adversary, opts ...core.Option) (Result, error) {
	n := len(proposals)
	if n == 0 {
		return Result{}, ErrNoProposals
	}
	res := Result{FirstDecision: -1}
	min := proposals[0]
	for _, p := range proposals {
		if p < min {
			min = p
		}
	}
	decided := make([]bool, n)
	remaining := n

	opts = append(opts, core.WithObserver(func(round int, _ *tree.Tree, e *core.Engine) {
		for y := 0; y < n; y++ {
			if !decided[y] && e.Heard(y).Full() {
				decided[y] = true
				remaining--
				if res.FirstDecision < 0 {
					res.FirstDecision = round
				}
				res.Rounds = round
			}
		}
	}))

	if _, err := core.Run(n, adv, core.Gossip, opts...); err != nil {
		res.Terminated = false
		return res, fmt.Errorf("consensus: FloodMin did not terminate: %w", err)
	}
	if n == 1 {
		// Round 0 is already gossip-complete; the observer never fires.
		res.FirstDecision, res.Rounds = 0, 0
	}
	if remaining > 0 && n > 1 {
		// Unreachable: gossip completion implies every heard set full.
		return res, fmt.Errorf("consensus: internal error: %d undecided after gossip", remaining)
	}
	res.Decision = min
	res.Terminated = true
	return res, nil
}

// EagerResult reports an EagerFloodMin run, which can violate agreement.
type EagerResult struct {
	// Decisions[y] is process y's decided value, or -1 if undecided.
	Decisions []int
	// Rounds is the number of rounds executed.
	Rounds int
}

// EagerFloodMin is the deliberately unsafe variant: process y decides
// min(K_y proposals) as soon as |K_y| ≥ quorum. With quorum < n, two
// processes can decide different minima. It runs until every process has
// decided or the budget trips.
func EagerFloodMin(proposals []int, quorum int, adv core.Adversary, opts ...core.Option) (EagerResult, error) {
	n := len(proposals)
	if n == 0 {
		return EagerResult{}, ErrNoProposals
	}
	if quorum < 1 || quorum > n {
		return EagerResult{}, fmt.Errorf("consensus: quorum %d out of [1,%d]", quorum, n)
	}
	res := EagerResult{Decisions: make([]int, n)}
	for y := range res.Decisions {
		res.Decisions[y] = -1
	}
	remaining := n
	opts = append(opts, core.WithObserver(func(round int, _ *tree.Tree, e *core.Engine) {
		for y := 0; y < n; y++ {
			if res.Decisions[y] >= 0 {
				continue
			}
			k := e.Heard(y)
			if k.Count() >= quorum {
				min := -1
				k.ForEach(func(x int) bool {
					if min < 0 || proposals[x] < min {
						min = proposals[x]
					}
					return true
				})
				res.Decisions[y] = min
				remaining--
			}
		}
		res.Rounds = round
	}))
	// Gossip goal guarantees everyone eventually crosses any quorum under
	// a terminating adversary; budget guards the rest.
	if _, err := core.Run(n, adv, core.Gossip, opts...); err != nil {
		if remaining > 0 {
			return res, fmt.Errorf("consensus: eager run incomplete: %w", err)
		}
	}
	return res, nil
}

// Agreement reports whether all decided values in an eager run coincide.
func (r EagerResult) Agreement() bool {
	first := -1
	for _, d := range r.Decisions {
		if d < 0 {
			continue
		}
		if first < 0 {
			first = d
		} else if d != first {
			return false
		}
	}
	return true
}

// FindDisagreement searches for an adversary schedule under which
// EagerFloodMin with the given quorum violates agreement on n processes
// (proposals = process ids). It returns the witnessing schedule, or nil
// if none was found within trials. The witness for quorum ≤ n−1 is
// usually found instantly: a path delivers different prefixes to
// different processes.
func FindDisagreement(n, quorum, trials int, seedStart uint64) []*tree.Tree {
	proposals := make([]int, n)
	for i := range proposals {
		proposals[i] = i
	}
	// Deterministic candidate first: the identity path gives process 1
	// the set {0,1} and process n−1 the set {n−2,n−1}; with quorum 2 they
	// decide 0 and n−2 respectively.
	candidates := [][]*tree.Tree{
		{tree.IdentityPath(n)},
	}
	for s := uint64(0); s < uint64(trials); s++ {
		candidates = append(candidates, randomSchedule(n, 2*n, seedStart+s))
	}
	for _, sched := range candidates {
		adv := replay{sched}
		res, err := EagerFloodMin(proposals, quorum, adv, core.WithMaxRounds(4*n*n))
		if err != nil {
			continue
		}
		if !res.Agreement() {
			return sched
		}
	}
	return nil
}

// replay repeats the last tree after the schedule is exhausted.
type replay struct{ trees []*tree.Tree }

func (r replay) Next(v core.View) *tree.Tree {
	if len(r.trees) == 0 {
		return nil
	}
	if i := v.Round(); i < len(r.trees) {
		return r.trees[i]
	}
	return r.trees[len(r.trees)-1]
}

func randomSchedule(n, rounds int, seed uint64) []*tree.Tree {
	src := newSource(seed)
	out := make([]*tree.Tree, rounds)
	for i := range out {
		out[i] = tree.Random(n, src)
	}
	return out
}

// newSource isolates the rng import to one spot.
func newSource(seed uint64) *rng.Source { return rng.New(seed) }
