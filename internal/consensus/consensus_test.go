package consensus

import (
	"errors"
	"testing"
	"testing/quick"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestFloodMinDecidesGlobalMin(t *testing.T) {
	tests := []struct {
		name      string
		proposals []int
		want      int
	}{
		{"distinct", []int{5, 3, 9, 7}, 3},
		{"duplicates", []int{2, 2, 2}, 2},
		{"minAtEnd", []int{9, 8, 7, 1}, 1},
		{"negative", []int{0, -4, 3}, -4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := rng.New(1)
			res, err := FloodMin(tt.proposals, adversary.Random{Src: src})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Terminated {
				t.Fatal("not terminated")
			}
			if res.Decision != tt.want {
				t.Errorf("Decision = %d, want %d", res.Decision, tt.want)
			}
			if res.FirstDecision < 1 || res.Rounds < res.FirstDecision {
				t.Errorf("decision rounds inconsistent: first=%d last=%d",
					res.FirstDecision, res.Rounds)
			}
		})
	}
}

func TestFloodMinSingleProcess(t *testing.T) {
	res, err := FloodMin([]int{42}, adversary.Static{Tree: tree.MustNew([]int{0})})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Decision != 42 || res.Rounds != 0 {
		t.Errorf("n=1 result: %+v", res)
	}
}

func TestFloodMinEmptyProposals(t *testing.T) {
	if _, err := FloodMin(nil, adversary.AscendingPath{}); !errors.Is(err, ErrNoProposals) {
		t.Fatalf("err = %v, want ErrNoProposals", err)
	}
}

func TestFloodMinStallsUnderAdaptiveAdversary(t *testing.T) {
	// The gossip staller prevents FloodMin termination forever: the
	// consensus impossibility face of the model.
	_, err := FloodMin([]int{3, 1, 4}, gossip.Staller{}, core.WithMaxRounds(100))
	if !errors.Is(err, core.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestFloodMinValidityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(10)
		proposals := make([]int, n)
		present := map[int]bool{}
		for i := range proposals {
			proposals[i] = src.Intn(100)
			present[proposals[i]] = true
		}
		res, err := FloodMin(proposals, adversary.Random{Src: src})
		if err != nil || !res.Terminated {
			return false
		}
		// Validity: the decision is someone's proposal; and it is the min.
		if !present[res.Decision] {
			return false
		}
		for _, p := range proposals {
			if p < res.Decision {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEagerFloodMinFullQuorumIsSafe(t *testing.T) {
	// quorum = n is exactly FloodMin: always agreement.
	src := rng.New(2)
	proposals := []int{4, 0, 9, 2, 6}
	res, err := EagerFloodMin(proposals, 5, adversary.Random{Src: src})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement() {
		t.Error("full-quorum eager run disagreed")
	}
	for _, d := range res.Decisions {
		if d != 0 {
			t.Errorf("decisions = %v, want all 0", res.Decisions)
			break
		}
	}
}

func TestEagerFloodMinQuorumValidation(t *testing.T) {
	for _, q := range []int{0, 4} {
		if _, err := EagerFloodMin([]int{1, 2, 3}, q, adversary.AscendingPath{}); err == nil {
			t.Errorf("quorum %d accepted for n=3", q)
		}
	}
	if _, err := EagerFloodMin(nil, 1, adversary.AscendingPath{}); !errors.Is(err, ErrNoProposals) {
		t.Errorf("empty proposals: %v", err)
	}
}

func TestEagerFloodMinPartialQuorumDisagrees(t *testing.T) {
	// The identity path with quorum 2: process 1 hears {0,1} and decides
	// 0; process 3 hears {2,3} and decides 2. Agreement violated.
	proposals := []int{0, 1, 2, 3}
	res, err := EagerFloodMin(proposals, 2,
		adversary.Static{Tree: tree.IdentityPath(4)}, core.WithMaxRounds(64))
	// The run may or may not terminate fully (static path stalls gossip),
	// but decisions happen early regardless.
	_ = err
	if res.Agreement() {
		t.Fatalf("expected disagreement, decisions = %v", res.Decisions)
	}
}

func TestFindDisagreement(t *testing.T) {
	sched := FindDisagreement(5, 2, 3, 1)
	if sched == nil {
		t.Fatal("no disagreement witness found for quorum 2, n 5")
	}
	// Replay the witness and confirm it indeed splits deciders.
	proposals := []int{0, 1, 2, 3, 4}
	res, _ := EagerFloodMin(proposals, 2, replay{sched}, core.WithMaxRounds(100))
	if res.Agreement() {
		t.Error("witness schedule did not reproduce the disagreement")
	}
}

func TestFindDisagreementFullQuorumFindsNothing(t *testing.T) {
	if sched := FindDisagreement(4, 4, 2, 1); sched != nil {
		t.Error("found a 'disagreement' for the safe full quorum")
	}
}

func TestAgreementHelper(t *testing.T) {
	if !(EagerResult{Decisions: []int{-1, 2, 2}}).Agreement() {
		t.Error("agreeing run reported disagreement")
	}
	if (EagerResult{Decisions: []int{1, 2}}).Agreement() {
		t.Error("disagreeing run reported agreement")
	}
	if !(EagerResult{Decisions: []int{-1, -1}}).Agreement() {
		t.Error("empty decisions should vacuously agree")
	}
}
