package core_test

import (
	"errors"
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// TestEngineResetMatchesFresh: an engine Reset between runs behaves
// exactly like a freshly allocated one, including across different n.
func TestEngineResetMatchesFresh(t *testing.T) {
	e := core.NewEngine(4)
	for _, n := range []int{7, 7, 3, 12, 1, 12} {
		e.Reset(n)
		if e.N() != n || e.Round() != 0 {
			t.Fatalf("after Reset(%d): n=%d round=%d", n, e.N(), e.Round())
		}
		fresh := core.NewEngine(n)
		src := rng.New(uint64(n))
		for r := 0; r < 5; r++ {
			tr := tree.Random(n, src)
			e.Step(tr)
			fresh.Step(tr)
			for y := 0; y < n; y++ {
				if !e.Heard(y).Equal(fresh.Heard(y)) {
					t.Fatalf("n=%d round %d: heard[%d] diverged", n, r+1, y)
				}
			}
			if !e.Broadcasters().Equal(fresh.Broadcasters()) {
				t.Fatalf("n=%d round %d: broadcasters diverged", n, r+1)
			}
		}
	}
}

// TestMatrixEngineReset mirrors the Engine test for the matrix oracle.
func TestMatrixEngineReset(t *testing.T) {
	e := core.NewMatrixEngine(5)
	for _, n := range []int{5, 9, 5} {
		e.Reset(n)
		fresh := core.NewMatrixEngine(n)
		src := rng.New(uint64(n) + 7)
		for r := 0; r < 4; r++ {
			tr := tree.Random(n, src)
			e.Step(tr)
			fresh.Step(tr)
		}
		if !e.Matrix().Equal(fresh.Matrix()) {
			t.Fatalf("n=%d: matrix diverged after reset", n)
		}
		if e.Round() != fresh.Round() {
			t.Fatalf("n=%d: rounds %d vs %d", n, e.Round(), fresh.Round())
		}
	}
}

// TestRunnerMatchesRun is the pooled pipeline's core guarantee: a warm
// Runner returns the same round counts (and error classes) as the
// allocating Run, trial after trial, across adversaries and goals.
func TestRunnerMatchesRun(t *testing.T) {
	r := core.NewRunner()
	for _, n := range []int{1, 2, 5, 16, 33} {
		for trial := 0; trial < 4; trial++ {
			seed := uint64(n*100 + trial)
			want, err1 := core.BroadcastTime(n, adversary.Random{Src: rng.New(seed)})
			got, err2 := r.BroadcastTime(n, adversary.Random{Src: rng.New(seed)})
			if want != got || (err1 == nil) != (err2 == nil) {
				t.Fatalf("n=%d trial %d: Runner %d (%v), Run %d (%v)", n, trial, got, err2, want, err1)
			}
		}
	}
	// Gossip goal, interleaved with broadcast runs on the same Runner.
	for _, n := range []int{2, 8} {
		seed := uint64(n)
		want, err1 := core.Run(n, adversary.Random{Src: rng.New(seed)}, core.Gossip)
		got, err2 := r.GossipTime(n, adversary.Random{Src: rng.New(seed)})
		if err1 != nil || err2 != nil || want.Rounds != got {
			t.Fatalf("gossip n=%d: Runner %d (%v), Run %d (%v)", n, got, err2, want.Rounds, err1)
		}
	}
}

// TestRunnerMaxRoundsError: budget exhaustion matches the allocating
// path's error class and message.
func TestRunnerMaxRoundsError(t *testing.T) {
	r := core.NewRunner()
	r.MaxRounds = 3
	static := adversary.Static{Tree: tree.IdentityPath(16)}
	got, err := r.BroadcastTime(16, static)
	if !errors.Is(err, core.ErrMaxRounds) || got != 3 {
		t.Fatalf("rounds=%d err=%v, want 3 rounds and ErrMaxRounds", got, err)
	}
	_, werr := core.BroadcastTime(16, static, core.WithMaxRounds(3))
	if werr == nil || err.Error() != werr.Error() {
		t.Fatalf("error strings differ:\n runner: %v\n run:    %v", err, werr)
	}
	// A bad tree fails identically too.
	r.MaxRounds = 0
	nilAdv := adversary.Func(func(core.View) *tree.Tree { return nil })
	_, err = r.BroadcastTime(4, nilAdv)
	_, werr = core.BroadcastTime(4, nilAdv)
	if !errors.Is(err, core.ErrBadTree) || werr == nil || err.Error() != werr.Error() {
		t.Fatalf("bad-tree errors differ:\n runner: %v\n run:    %v", err, werr)
	}
}

// TestRunnerBothTimesMatchesGossip pins Runner.BothTimes against the
// observer-based gossip.BothTimes (checked numerically here to avoid an
// import cycle with the gossip package's own tests: broadcast must
// complete no later than gossip, and re-running broadcast alone must
// agree).
func TestRunnerBothTimesMatchesGossip(t *testing.T) {
	r := core.NewRunner()
	for _, n := range []int{2, 6, 16} {
		seed := uint64(n) * 3
		b, g, err := r.BothTimes(n, adversary.Random{Src: rng.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if b < 0 || b > g {
			t.Fatalf("n=%d: broadcast %d, gossip %d", n, b, g)
		}
		bAlone, err := core.BroadcastTime(n, adversary.Random{Src: rng.New(seed)})
		if err != nil || bAlone != b {
			t.Fatalf("n=%d: BothTimes broadcast %d, BroadcastTime %d (%v)", n, b, bAlone, err)
		}
	}
}

// TestRunnerTrialAllocs: a warm Runner with a reusable adversary runs
// whole trials without allocating — the tentpole invariant the batched
// pipeline is built on.
func TestRunnerTrialAllocs(t *testing.T) {
	const n = 64
	r := core.NewRunner()
	adv := adversary.NewReusableRandom()
	src := rng.New(1)
	warm := func() {
		adv.Reset(src)
		if _, err := r.BroadcastTime(n, adv); err != nil {
			t.Fatal(err)
		}
	}
	warm() // grow every buffer
	allocs := testing.AllocsPerRun(20, warm)
	if allocs > 1 {
		t.Errorf("warm trial allocates %.1f objects/run, want ~0", allocs)
	}
}
