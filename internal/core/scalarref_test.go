package core

import (
	"fmt"
	"testing"

	"dyntreecast/internal/bitset"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// This file is the packed-engine half of the differential harness: a
// deliberately naive pre-packing reference implementation of the model
// (plain bool matrices, explicit double buffering, no bit tricks, no
// shared ordering code) and a battery that drives it in lockstep with the
// word-packed Engine and the blocked MatrixEngine at sizes up to n = 256 —
// including sizes that are not multiples of 64, where the word kernels'
// tail masking and the 64-row band edges of the blocked transpose product
// are exercised. Per round it pins heard-set equality and the
// broadcast/gossip predicates across all three implementations.
// differential_test.go covers the same engines against the operational
// goroutine system at small n; this battery covers the packed layouts at
// the sizes where packing actually matters.

// scalarRef is the reference engine: heard[y][x] reports x ∈ K_y, updated
// by copying the whole state and applying K_y ← K_y ∪ K_parent(y) per bit
// against the copy. Nothing here shares code with Engine, MatrixEngine,
// bitset, or tree.DepthOrder, so agreement is evidence, not tautology.
type scalarRef struct {
	n     int
	heard [][]bool
	prev  [][]bool
}

func newScalarRef(n int) *scalarRef {
	s := &scalarRef{n: n, heard: make([][]bool, n), prev: make([][]bool, n)}
	for y := 0; y < n; y++ {
		s.heard[y] = make([]bool, n)
		s.prev[y] = make([]bool, n)
		s.heard[y][y] = true
	}
	return s
}

func (s *scalarRef) Step(t *tree.Tree) {
	for y := range s.heard {
		copy(s.prev[y], s.heard[y])
	}
	for y, p := range t.Parents() {
		if p == y {
			continue
		}
		for x, v := range s.prev[p] {
			if v {
				s.heard[y][x] = true
			}
		}
	}
}

// BroadcastDone reports whether some value x has reached every process.
func (s *scalarRef) BroadcastDone() bool {
	for x := 0; x < s.n; x++ {
		all := true
		for y := 0; y < s.n && all; y++ {
			all = s.heard[y][x]
		}
		if all {
			return true
		}
	}
	return false
}

// GossipDone reports whether every process has heard every value.
func (s *scalarRef) GossipDone() bool {
	for _, row := range s.heard {
		for _, v := range row {
			if !v {
				return false
			}
		}
	}
	return true
}

// packRow packs the reference's heard row into words for a cheap word-level
// comparison against the live packed rows (packing here is comparison
// plumbing, not reference semantics).
func (s *scalarRef) packRow(y int, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for x, v := range s.heard[y] {
		if v {
			dst[x>>6] |= 1 << (uint(x) & 63)
		}
	}
}

// diffSizes are the battery sizes: straddling one-word, exact-multiple and
// tail-masked layouts, up to the issue's n = 256 bar.
func diffSizes() []int {
	return []int{16, 63, 64, 65, 100, 129, 256}
}

// diffBudget bounds a schedule's length: generous for the goal times every
// generator can reach (broadcast ≤ ⌈(1+√2)n−1⌉ by Theorem 3.1; the random
// generators complete gossip well inside it too), while keeping the
// deterministic stallers — which never gossip — from running to the n²+1
// trivial budget.
func diffBudget(n int) int { return 5*n/2 + 16 }

func TestPackedEnginesMatchScalarReference(t *testing.T) {
	for _, gen := range scheduleGens() {
		for _, n := range diffSizes() {
			seeds := []uint64{1, 2}
			if n >= 100 {
				seeds = seeds[:1] // bound runtime under -race at the big sizes
			}
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/n%d/seed%d", gen.name, n, seed), func(t *testing.T) {
					src := rng.New(seed*10007 + uint64(n))
					eng := NewEngine(n)
					mat := NewMatrixEngine(n)
					ref := newScalarRef(n)

					stride := bitset.WordsFor(n)
					want := make([]uint64, stride)
					budget := diffBudget(n)
					broadcastRound := -1
					for round := 1; round <= budget; round++ {
						tr := gen.next(eng, src, n)
						eng.Step(tr)
						mat.Step(tr)
						ref.Step(tr)

						// Per-round heard-set equality, word-exact, for every
						// process: reference vs packed Engine rows and vs the
						// MatrixEngine's columns.
						for y := 0; y < n; y++ {
							ref.packRow(y, want)
							if !bitset.EqualWords(eng.Heard(y).Words(), want) {
								t.Fatalf("round %d: Engine K_%d = %v, reference %v",
									round, y, eng.Heard(y), bitset.Wrap(n, want))
							}
							if got := mat.Heard(y); !bitset.EqualWords(got.Words(), want) {
								t.Fatalf("round %d: MatrixEngine K_%d = %v, reference %v",
									round, y, got, bitset.Wrap(n, want))
							}
						}

						// Per-round goal predicates across all three.
						wb, wg := ref.BroadcastDone(), ref.GossipDone()
						if eb, eg := eng.BroadcastDone(), eng.GossipDone(); eb != wb || eg != wg {
							t.Fatalf("round %d: Engine (broadcast=%v gossip=%v), reference (%v %v)",
								round, eb, eg, wb, wg)
						}
						if mb, mg := mat.BroadcastDone(), mat.GossipDone(); mb != wb || mg != wg {
							t.Fatalf("round %d: MatrixEngine (broadcast=%v gossip=%v), reference (%v %v)",
								round, mb, mg, wb, wg)
						}

						if wb && broadcastRound < 0 {
							broadcastRound = round
						}
						if wg {
							return // all goals reached in agreement
						}
						if wb && (gen.name == "identity-path" || gen.name == "ascending-heard-path") {
							return // deterministic stallers never gossip
						}
					}
					if broadcastRound < 0 {
						t.Fatalf("broadcast incomplete after %d rounds (budget too small for %s at n=%d)",
							budget, gen.name, n)
					}
				})
			}
		}
	}
}

// TestPackedRunnerMatchesReferenceRounds locks the pooled Runner's round
// counts at packed sizes to the scalar reference: the whole trial pipeline
// — Reset, Step, done predicates — agrees with the naive model, not just
// a single Step.
func TestPackedRunnerMatchesReferenceRounds(t *testing.T) {
	r := NewRunner()
	for _, n := range []int{63, 65, 129} {
		for seed := uint64(1); seed <= 3; seed++ {
			// Replay the exact tree sequence the runner consumed into the
			// reference, then compare t*.
			var replay []*tree.Tree
			adv := adversaryFunc(func(v View) *tree.Tree {
				tr := tree.Random(v.N(), rng.New(seed*31+uint64(v.Round())))
				replay = append(replay, tr)
				return tr
			})
			got, err := r.BroadcastTime(n, adv)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			ref := newScalarRef(n)
			rounds := 0
			for !ref.BroadcastDone() {
				if rounds >= len(replay) {
					t.Fatalf("n=%d seed=%d: reference needs more than the %d recorded rounds", n, seed, len(replay))
				}
				ref.Step(replay[rounds])
				rounds++
			}
			if rounds != got {
				t.Errorf("n=%d seed=%d: Runner t* = %d, reference %d", n, seed, got, rounds)
			}
			replay = nil
		}
	}
}
