// Package core implements the dynamic-rooted-tree broadcast model of
// El-Hayek–Henzinger–Schmid (PODC 2022): n processes, synchronous rounds,
// one adversarially chosen rooted tree per round, knowledge composing as
// the product graph G(t) = G1 ∘ … ∘ Gt.
//
// Two engines evolve the knowledge state:
//
//   - Engine is column-oriented: it maintains the heard set K_y of every
//     process (column y of the adjacency matrix) and applies a round as n
//     word-parallel unions K_y ← K_y ∪ K_parent(y), evaluated against the
//     pre-round state. This is the fast path, O(n²/64) words per round.
//   - MatrixEngine is row-oriented: it maintains the full adjacency matrix
//     (reach sets) via boolmat.ApplyTree. It is slower but exposes the
//     matrix the paper's analysis reasons about, and serves as a
//     differential oracle for Engine.
//
// Broadcast has completed exactly when some row of G(t) is full, i.e. when
// ⋂_y K_y ≠ ∅; Engine tracks that intersection incrementally.
//
// The Run functions drive an Adversary until broadcast (or gossip)
// completion and return the paper's quantity t*.
package core

import (
	"errors"
	"fmt"

	"dyntreecast/internal/bitset"
	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/tree"
)

// Adversary chooses the round graph for each round, observing the current
// knowledge state. Implementations must return a tree on exactly View.N()
// vertices; they must not retain or mutate the View's sets.
type Adversary interface {
	// Next returns the tree for round v.Round()+1.
	Next(v View) *tree.Tree
}

// View is the read-only knowledge state an Adversary may consult.
type View interface {
	// N returns the number of processes.
	N() int
	// Round returns the number of rounds applied so far.
	Round() int
	// Heard returns the live heard set K_y (whose values y has received).
	// Callers must not mutate it.
	Heard(y int) *bitset.Set
	// Broadcasters returns the live set ⋂_y K_y of processes whose value
	// has reached everyone. Callers must not mutate it.
	Broadcasters() *bitset.Set
}

// Engine is the column-oriented simulation state. Create with NewEngine.
//
// All n heard rows live in one contiguous bitset.Block (row y = K_y), so a
// round is a flat sweep of word-level OR kernels over packed storage; the
// heard slice holds per-row Set views aliasing the block, serving the View
// interface without copying (DESIGN.md §3g).
type Engine struct {
	n     int
	round int
	block *bitset.Block // n×n packed rows: row y = K_y
	heard []*bitset.Set // heard[y] aliases block row y
	inter *bitset.Set   // ⋂_y K_y, maintained per round
	ord   tree.DepthOrder
	// fullPrefix is the count of leading rows known full. Rows only gain
	// bits, so fullness is monotone and the cursor never moves back; it
	// amortizes the GossipDone scan and short-circuits the intersection
	// recomputation once the state saturates.
	fullPrefix int
}

var _ View = (*Engine)(nil)

// NewEngine returns the round-0 state on n processes: everyone has heard
// exactly itself. n must be >= 1.
func NewEngine(n int) *Engine {
	if n < 1 {
		panic(fmt.Sprintf("core: NewEngine needs n >= 1, got %d", n))
	}
	e := &Engine{
		n:     n,
		block: bitset.NewBlock(n, n),
		heard: make([]*bitset.Set, n),
		inter: bitset.New(n),
	}
	e.block.SetDiagonal()
	for y := 0; y < n; y++ {
		e.heard[y] = e.block.RowSet(y)
	}
	if n == 1 {
		e.inter.Set(0) // the sole process has trivially broadcast
	}
	return e
}

// Reset returns the engine to the round-0 state on n processes. When n
// matches the engine's current size every buffer is reused and Reset
// allocates nothing; a different n rebuilds the engine as NewEngine would.
// This is the pooled lifecycle of the batched trial pipeline: one engine
// per worker, Reset per trial. n must be >= 1.
func (e *Engine) Reset(n int) {
	if n < 1 {
		panic(fmt.Sprintf("core: Reset needs n >= 1, got %d", n))
	}
	if n != e.n {
		*e = *NewEngine(n)
		return
	}
	e.round = 0
	e.fullPrefix = 0
	e.block.Zero()
	e.block.SetDiagonal()
	e.inter.Reset()
	if n == 1 {
		e.inter.Set(0)
	}
}

// Clone returns an independent copy of the engine state. Used by search
// adversaries that explore alternative futures.
func (e *Engine) Clone() *Engine {
	c := &Engine{
		n:          e.n,
		round:      e.round,
		block:      e.block.Clone(),
		heard:      make([]*bitset.Set, e.n),
		inter:      e.inter.Clone(),
		fullPrefix: e.fullPrefix,
	}
	for y := range c.heard {
		c.heard[y] = c.block.RowSet(y)
	}
	return c
}

// N returns the number of processes.
func (e *Engine) N() int { return e.n }

// Round returns the number of rounds applied so far.
func (e *Engine) Round() int { return e.round }

// Heard returns the live heard set of y.
func (e *Engine) Heard(y int) *bitset.Set { return e.heard[y] }

// Broadcasters returns the live set of processes that have broadcast.
func (e *Engine) Broadcasters() *bitset.Set { return e.inter }

// BroadcastDone reports whether some process's value has reached everyone.
func (e *Engine) BroadcastDone() bool { return !e.inter.Empty() }

// GossipDone reports whether every process has heard every value. The
// fullPrefix cursor makes the scan amortized O(n) words over a whole run:
// rows already known full are never re-checked.
func (e *Engine) GossipDone() bool {
	e.advanceFullPrefix()
	return e.fullPrefix == e.n
}

func (e *Engine) advanceFullPrefix() {
	for e.fullPrefix < e.n && e.block.RowFull(e.fullPrefix) {
		e.fullPrefix++
	}
}

// Step applies one synchronous round along t. Every non-root process y
// merges its parent's pre-round heard set: K_y ← K_y ∪ K_parent(y).
// The self-loop (keeping K_y) is implicit in the union.
func (e *Engine) Step(t *tree.Tree) {
	if t.N() != e.n {
		panic(fmt.Sprintf("core: tree on %d vertices for engine of %d processes", t.N(), e.n))
	}
	parents := t.Parents()
	// Applying in child-before-parent order guarantees each K_parent read
	// is the pre-round value: a node is always processed before its parent,
	// so no row is read after being written this round. This keeps the
	// update single-hop per round (no intra-round cascade) without double
	// buffering.
	order := e.ord.Fill(parents)
	stride := e.block.Stride()
	words := e.block.Words()
	for _, y := range order {
		p := parents[y]
		if p == y {
			continue
		}
		bitset.OrWords(words[y*stride:(y+1)*stride], words[p*stride:(p+1)*stride])
	}
	e.round++
	e.recomputeIntersection()
}

func (e *Engine) recomputeIntersection() {
	// Saturation fast path: once every row is full (gossip complete) the
	// intersection is all of [n] and can only stay that way.
	e.advanceFullPrefix()
	e.inter.Fill()
	if e.fullPrefix == e.n {
		return
	}
	for _, k := range e.heard {
		e.inter.Intersect(k)
		if e.inter.Empty() {
			return
		}
	}
}

// Matrix materializes the current adjacency matrix of G(round): entry
// (x, y) is set iff x ∈ K_y.
func (e *Engine) Matrix() *boolmat.Matrix {
	m := boolmat.Zero(e.n)
	for y := 0; y < e.n; y++ {
		e.heard[y].ForEach(func(x int) bool {
			m.Set(x, y)
			return true
		})
	}
	return m
}

// Stats returns the matrix statistics of the current state.
func (e *Engine) Stats() boolmat.Stats { return e.Matrix().Stats() }

// HeardCounts returns |K_y| for every y without materializing the matrix.
func (e *Engine) HeardCounts() []int {
	out := make([]int, e.n)
	for y, k := range e.heard {
		out[y] = k.Count()
	}
	return out
}

// MatrixEngine is the row-oriented reference engine: it holds the full
// adjacency matrix and applies rounds via boolmat.ApplyTree. Its states are
// definitionally G(t); Engine is tested against it.
type MatrixEngine struct {
	m     *boolmat.Matrix
	round int
}

var _ View = (*MatrixEngine)(nil)

// NewMatrixEngine returns the round-0 matrix engine (identity matrix).
func NewMatrixEngine(n int) *MatrixEngine {
	if n < 1 {
		panic(fmt.Sprintf("core: NewMatrixEngine needs n >= 1, got %d", n))
	}
	return &MatrixEngine{m: boolmat.Identity(n)}
}

// Reset returns the matrix engine to the round-0 state (identity matrix)
// on n processes, reusing the matrix when n matches. The MatrixEngine
// sibling of Engine.Reset, so the differential oracle can share the pooled
// lifecycle. n must be >= 1.
func (e *MatrixEngine) Reset(n int) {
	if n < 1 {
		panic(fmt.Sprintf("core: Reset needs n >= 1, got %d", n))
	}
	if n != e.m.N() {
		*e = *NewMatrixEngine(n)
		return
	}
	e.round = 0
	e.m.SetIdentity()
}

// N returns the number of processes.
func (e *MatrixEngine) N() int { return e.m.N() }

// Round returns the number of rounds applied so far.
func (e *MatrixEngine) Round() int { return e.round }

// Step applies one round.
func (e *MatrixEngine) Step(t *tree.Tree) {
	e.m.ApplyTree(t)
	e.round++
}

// Matrix returns the live adjacency matrix; callers must not mutate it.
func (e *MatrixEngine) Matrix() *boolmat.Matrix { return e.m }

// BroadcastDone reports whether some row is full.
func (e *MatrixEngine) BroadcastDone() bool { return e.m.HasFullRow() }

// GossipDone reports whether all rows are full.
func (e *MatrixEngine) GossipDone() bool { return e.m.AllRowsFull() }

// Heard materializes the heard set K_y (column y). Unlike Engine.Heard
// this allocates; MatrixEngine is the slow reference path.
func (e *MatrixEngine) Heard(y int) *bitset.Set { return e.m.Column(y) }

// Broadcasters returns the set of processes with full rows.
func (e *MatrixEngine) Broadcasters() *bitset.Set {
	s := bitset.New(e.m.N())
	for _, x := range e.m.FullRows() {
		s.Set(x)
	}
	return s
}

// Sentinel errors returned by the run drivers.
var (
	// ErrMaxRounds reports that the round budget was exhausted before the
	// goal predicate held. For gossip under an adaptive adversary this is
	// expected: adversarial gossip time is unbounded (see package gossip).
	ErrMaxRounds = errors.New("core: max rounds exceeded")
	// ErrBadTree reports that the adversary returned nil or a tree of the
	// wrong size.
	ErrBadTree = errors.New("core: adversary returned an invalid tree")
)

// Goal selects the termination predicate of a run.
type Goal int

const (
	// Broadcast stops when some process's value has reached everyone
	// (the paper's t*).
	Broadcast Goal = iota
	// Gossip stops when every process has heard every value.
	Gossip
)

// String returns the goal name.
func (g Goal) String() string {
	switch g {
	case Broadcast:
		return "broadcast"
	case Gossip:
		return "gossip"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// Result reports the outcome of a run.
type Result struct {
	N            int
	Goal         Goal
	Rounds       int   // rounds applied; equals t* when Completed
	Completed    bool  // whether the goal predicate held within budget
	Broadcasters []int // processes whose value reached everyone (at end)
	FinalStats   boolmat.Stats
}

// config carries run options.
type config struct {
	maxRounds int
	observer  func(round int, t *tree.Tree, e *Engine)
}

// Option configures Run.
type Option func(*config)

// WithMaxRounds caps the number of rounds. The default is n²+1, which the
// trivial bound of §2 guarantees is enough for broadcast under any valid
// adversary.
func WithMaxRounds(m int) Option {
	return func(c *config) { c.maxRounds = m }
}

// WithObserver installs a per-round callback, invoked after each round with
// the 1-based round number, the tree just applied, and the engine. The
// observer must treat the engine as read-only.
func WithObserver(fn func(round int, t *tree.Tree, e *Engine)) Option {
	return func(c *config) { c.observer = fn }
}

// Run drives adv from the initial state until the goal holds, returning
// t* in Result.Rounds. If the round budget is exhausted first it returns
// the partial result and an error wrapping ErrMaxRounds.
func Run(n int, adv Adversary, goal Goal, opts ...Option) (Result, error) {
	cfg := config{maxRounds: n*n + 1}
	for _, o := range opts {
		o(&cfg)
	}
	e := NewEngine(n)
	done := func() bool {
		if goal == Gossip {
			return e.GossipDone()
		}
		return e.BroadcastDone()
	}
	for !done() {
		if e.round >= cfg.maxRounds {
			res := resultOf(e, goal, false)
			return res, fmt.Errorf("%w: %s incomplete after %d rounds (n=%d)",
				ErrMaxRounds, goal, e.round, n)
		}
		t := adv.Next(e)
		if t == nil || t.N() != n {
			res := resultOf(e, goal, false)
			return res, fmt.Errorf("%w: round %d", ErrBadTree, e.round+1)
		}
		e.Step(t)
		if cfg.observer != nil {
			cfg.observer(e.round, t, e)
		}
	}
	return resultOf(e, goal, true), nil
}

func resultOf(e *Engine, goal Goal, completed bool) Result {
	return Result{
		N:            e.n,
		Goal:         goal,
		Rounds:       e.round,
		Completed:    completed,
		Broadcasters: e.inter.Slice(),
		FinalStats:   e.Stats(),
	}
}

// BroadcastTime is the common case: run adv to broadcast completion and
// return t*.
func BroadcastTime(n int, adv Adversary, opts ...Option) (int, error) {
	res, err := Run(n, adv, Broadcast, opts...)
	if err != nil {
		return res.Rounds, err
	}
	return res.Rounds, nil
}
