package core

import (
	"testing"
	"testing/quick"

	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestCloneIsIndependent(t *testing.T) {
	src := rng.New(2)
	e := NewEngine(8)
	for i := 0; i < 4; i++ {
		e.Step(tree.Random(8, src))
	}
	c := e.Clone()
	if !c.Matrix().Equal(e.Matrix()) {
		t.Fatal("clone differs from original immediately")
	}
	if c.Round() != e.Round() {
		t.Fatalf("clone round %d != original %d", c.Round(), e.Round())
	}
	// Stepping the clone must not affect the original, and vice versa.
	before := e.Matrix()
	c.Step(tree.Random(8, src))
	if !e.Matrix().Equal(before) {
		t.Error("stepping the clone mutated the original")
	}
	e.Step(tree.Random(8, src))
	// Both evolved from the same base; they can differ now, but each must
	// remain a valid superset of the shared base state.
	if !before.SubsetOf(c.Matrix()) || !before.SubsetOf(e.Matrix()) {
		t.Error("monotonicity broken after clone divergence")
	}
}

func TestCloneBroadcastersShared(t *testing.T) {
	// Clone of a completed engine is also completed.
	e := NewEngine(5)
	star, err := tree.Star(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Step(star)
	c := e.Clone()
	if !c.BroadcastDone() {
		t.Error("clone lost completion state")
	}
	if got := c.Broadcasters().Slice(); len(got) != 1 || got[0] != 2 {
		t.Errorf("clone broadcasters = %v", got)
	}
}

func TestPropertyCloneThenSameStepsAgree(t *testing.T) {
	// Driving original and clone with the same schedule keeps them equal.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(12)
		e := NewEngine(n)
		for i := 0; i < 3; i++ {
			e.Step(tree.Random(n, src))
		}
		c := e.Clone()
		for i := 0; i < 5; i++ {
			tr := tree.Random(n, src)
			e.Step(tr)
			c.Step(tr)
			if !e.Matrix().Equal(c.Matrix()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnginesAgreeOnStructuredFamilies(t *testing.T) {
	// Differential testing on the structured tree families (stars, brooms,
	// caterpillars, k-ary) — shapes with extreme fan-out that random trees
	// rarely produce.
	const n = 9
	families := []*tree.Tree{}
	star, _ := tree.Star(n, 4)
	families = append(families, star)
	broom, _ := tree.Broom([]int{0, 1, 2, 3}, []int{4, 5, 6, 7, 8})
	families = append(families, broom)
	cat, _ := tree.Caterpillar([]int{0, 1, 2}, [][]int{{3, 4}, {5, 6}, {7, 8}})
	families = append(families, cat)
	kary, _ := tree.CompleteKAry(n, 3)
	families = append(families, kary)
	spider, _ := tree.Spider(0, [][]int{{1, 2, 3}, {4, 5}, {6, 7, 8}})
	families = append(families, spider)

	col := NewEngine(n)
	row := NewMatrixEngine(n)
	for round := 0; round < 3; round++ {
		for _, f := range families {
			col.Step(f)
			row.Step(f)
			if !col.Matrix().Equal(row.Matrix()) {
				t.Fatalf("engines diverged on %v", f)
			}
		}
	}
}

func TestResultFieldsOnSuccess(t *testing.T) {
	res, err := Run(5, staticAdversary{tree.IdentityPath(5)}, Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalStats.MaxRow != 5 {
		t.Errorf("FinalStats.MaxRow = %d, want 5", res.FinalStats.MaxRow)
	}
	if res.FinalStats.FullRows != 1 {
		t.Errorf("FinalStats.FullRows = %d, want 1", res.FinalStats.FullRows)
	}
	if res.FinalStats.Edges <= 5 {
		t.Errorf("FinalStats.Edges = %d, want > n", res.FinalStats.Edges)
	}
}
