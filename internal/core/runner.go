package core

import "fmt"

// Runner is the allocation-free trial driver of the batched pipeline: it
// owns one reusable Engine and drives adversaries to completion without
// materializing a Result. The package-level Run allocates a fresh engine
// and a full Result (final matrix statistics included) per call; a warm
// Runner reuses everything via Engine.Reset, so a trial costs only what
// the adversary itself allocates. Each campaign worker owns one Runner
// and serves every trial it executes with it (see DESIGN.md §3d).
//
// A Runner is not safe for concurrent use, and the round counts it
// returns are identical to the package-level Run's for the same adversary
// and stream — the differential tests in runner_test.go pin this.
type Runner struct {
	// MaxRounds caps each run's rounds; 0 selects the n²+1 default of the
	// §2 trivial bound, exactly as WithMaxRounds does for Run. It is
	// per-run configuration on a long-lived object: the campaign pool
	// clears it before every batch, so a job closure that wants a
	// specific budget must set it per trial and one that doesn't can
	// never inherit a stale value.
	MaxRounds int
	engine    *Engine
}

// NewRunner returns an empty Runner; its engine is built lazily at the
// first run and resized on demand by Engine.Reset.
func NewRunner() *Runner { return &Runner{} }

// Engine exposes the pooled engine: valid after a run until the next one,
// nil before the first. For observers and tests; treat it as read-only.
func (r *Runner) Engine() *Engine { return r.engine }

func (r *Runner) reset(n int) *Engine {
	if r.engine == nil {
		r.engine = NewEngine(n)
	} else {
		r.engine.Reset(n)
	}
	return r.engine
}

func (r *Runner) budget(n int) int {
	if r.MaxRounds > 0 {
		return r.MaxRounds
	}
	return n*n + 1
}

// Run drives adv from the round-0 state until the goal holds and returns
// the number of rounds applied (the paper's t* for Broadcast). Error
// conditions and messages match the package-level Run, so the two paths
// produce byte-identical campaign artifacts.
func (r *Runner) Run(n int, adv Adversary, goal Goal) (int, error) {
	e := r.reset(n)
	maxRounds := r.budget(n)
	done := func() bool {
		if goal == Gossip {
			return e.GossipDone()
		}
		return e.BroadcastDone()
	}
	for !done() {
		if e.round >= maxRounds {
			return e.round, fmt.Errorf("%w: %s incomplete after %d rounds (n=%d)",
				ErrMaxRounds, goal, e.round, n)
		}
		t := adv.Next(e)
		if t == nil || t.N() != n {
			return e.round, fmt.Errorf("%w: round %d", ErrBadTree, e.round+1)
		}
		e.Step(t)
	}
	return e.round, nil
}

// BroadcastTime runs adv to broadcast completion on the pooled engine and
// returns t* — the Runner form of the package-level BroadcastTime.
func (r *Runner) BroadcastTime(n int, adv Adversary) (int, error) {
	return r.Run(n, adv, Broadcast)
}

// GossipTime runs adv until every process has heard every value. Like
// gossip.Time, termination is not guaranteed for adaptive adversaries:
// set MaxRounds and handle ErrMaxRounds.
func (r *Runner) GossipTime(n int, adv Adversary) (int, error) {
	return r.Run(n, adv, Gossip)
}

// BothTimes runs adv once toward gossip completion and reports the round
// at which broadcast completed and the round at which gossip completed —
// the Runner form of gossip.BothTimes (broadcast is −1 if it never
// completed within the budget).
func (r *Runner) BothTimes(n int, adv Adversary) (broadcast, gossip int, err error) {
	e := r.reset(n)
	maxRounds := r.budget(n)
	broadcast = -1
	for !e.GossipDone() {
		if e.round >= maxRounds {
			return broadcast, e.round, fmt.Errorf("%w: %s incomplete after %d rounds (n=%d)",
				ErrMaxRounds, Gossip, e.round, n)
		}
		t := adv.Next(e)
		if t == nil || t.N() != n {
			return broadcast, e.round, fmt.Errorf("%w: round %d", ErrBadTree, e.round+1)
		}
		e.Step(t)
		if broadcast < 0 && e.BroadcastDone() {
			broadcast = e.round
		}
	}
	return broadcast, e.round, nil
}
