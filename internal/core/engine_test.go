package core

import (
	"errors"
	"testing"
	"testing/quick"

	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestNewEngineInitialState(t *testing.T) {
	e := NewEngine(4)
	if e.Round() != 0 {
		t.Errorf("Round() = %d, want 0", e.Round())
	}
	for y := 0; y < 4; y++ {
		k := e.Heard(y)
		if k.Count() != 1 || !k.Test(y) {
			t.Errorf("K_%d = %v, want {%d}", y, k, y)
		}
	}
	if e.BroadcastDone() {
		t.Error("broadcast done at round 0 for n=4")
	}
	if e.GossipDone() {
		t.Error("gossip done at round 0 for n=4")
	}
}

func TestNewEngineN1(t *testing.T) {
	e := NewEngine(1)
	if !e.BroadcastDone() {
		t.Error("n=1 should be broadcast-complete at round 0")
	}
	if !e.GossipDone() {
		t.Error("n=1 should be gossip-complete at round 0")
	}
}

func TestNewEnginePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine(0)
}

func TestStepSingleHop(t *testing.T) {
	// One round along path 0→1→2→3: each process hears its parent's
	// initial value only (no cascade).
	e := NewEngine(4)
	e.Step(tree.IdentityPath(4))
	wants := [][]int{{0}, {0, 1}, {1, 2}, {2, 3}}
	for y, want := range wants {
		got := e.Heard(y).Slice()
		if len(got) != len(want) {
			t.Fatalf("K_%d = %v, want %v", y, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("K_%d = %v, want %v", y, got, want)
			}
		}
	}
}

func TestStepSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine(3).Step(tree.IdentityPath(4))
}

func TestStaticPathBroadcastIsNMinus1(t *testing.T) {
	// §2 of the paper: repeating the same path gives t* = n−1.
	for _, n := range []int{2, 3, 5, 10, 33} {
		e := NewEngine(n)
		p := tree.IdentityPath(n)
		rounds := 0
		for !e.BroadcastDone() {
			e.Step(p)
			rounds++
			if rounds > n {
				t.Fatalf("n=%d: static path exceeded n rounds", n)
			}
		}
		if rounds != n-1 {
			t.Errorf("n=%d: static path t* = %d, want %d", n, rounds, n-1)
		}
		if got := e.Broadcasters().Slice(); len(got) != 1 || got[0] != 0 {
			t.Errorf("n=%d: broadcasters = %v, want [0]", n, got)
		}
	}
}

func TestStaticStarBroadcastIsOneRound(t *testing.T) {
	star, err := tree.Star(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(7)
	e.Step(star)
	if !e.BroadcastDone() {
		t.Fatal("star did not complete broadcast in one round")
	}
	if got := e.Broadcasters().Slice(); len(got) != 1 || got[0] != 3 {
		t.Errorf("broadcasters = %v, want [3]", got)
	}
}

func TestEnginesAgreeRandom(t *testing.T) {
	// Differential: Engine (columns) vs MatrixEngine (rows) on random
	// tree sequences.
	src := rng.New(21)
	for _, n := range []int{2, 5, 16, 40} {
		col := NewEngine(n)
		row := NewMatrixEngine(n)
		for r := 0; r < 3*n; r++ {
			tr := tree.Random(n, src)
			col.Step(tr)
			row.Step(tr)
			if !col.Matrix().Equal(row.Matrix()) {
				t.Fatalf("n=%d round %d: engines diverged", n, r+1)
			}
			if col.BroadcastDone() != row.BroadcastDone() {
				t.Fatalf("n=%d round %d: broadcast predicates diverged", n, r+1)
			}
		}
	}
}

func TestEnginesAgreeExhaustiveSmall(t *testing.T) {
	// For n=3, check a couple of rounds over every pair of trees.
	const n = 3
	tree.Enumerate(n, func(t1 *tree.Tree) bool {
		tree.Enumerate(n, func(t2 *tree.Tree) bool {
			col := NewEngine(n)
			row := NewMatrixEngine(n)
			col.Step(t1)
			row.Step(t1)
			col.Step(t2)
			row.Step(t2)
			if !col.Matrix().Equal(row.Matrix()) {
				t.Fatalf("diverged on %v then %v:\n%v\nvs\n%v",
					t1, t2, col.Matrix(), row.Matrix())
			}
			return true
		})
		return true
	})
}

func TestBroadcastersMatchFullRows(t *testing.T) {
	src := rng.New(5)
	e := NewEngine(9)
	for r := 0; r < 30; r++ {
		e.Step(tree.Random(9, src))
		want := e.Matrix().FullRows()
		got := e.Broadcasters().Slice()
		if len(got) != len(want) {
			t.Fatalf("round %d: broadcasters %v != full rows %v", r+1, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: broadcasters %v != full rows %v", r+1, got, want)
			}
		}
	}
}

func TestHeardCounts(t *testing.T) {
	e := NewEngine(4)
	e.Step(tree.IdentityPath(4))
	got := e.HeardCounts()
	want := []int{1, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("HeardCounts = %v, want %v", got, want)
			break
		}
	}
}

func TestMonotoneAndReflexiveInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(20)
		e := NewEngine(n)
		prev := e.Matrix()
		for r := 0; r < n; r++ {
			e.Step(tree.Random(n, src))
			cur := e.Matrix()
			if !prev.SubsetOf(cur) || !cur.IsReflexive() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// staticAdversary repeats one tree forever.
type staticAdversary struct{ t *tree.Tree }

func (a staticAdversary) Next(View) *tree.Tree { return a.t }

// badAdversary returns a wrong-size tree.
type badAdversary struct{}

func (badAdversary) Next(View) *tree.Tree { return tree.IdentityPath(2) }

func TestRunBroadcast(t *testing.T) {
	res, err := Run(6, staticAdversary{tree.IdentityPath(6)}, Broadcast)
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if !res.Completed || res.Rounds != 5 {
		t.Errorf("Result = %+v, want completed in 5 rounds", res)
	}
	if len(res.Broadcasters) != 1 || res.Broadcasters[0] != 0 {
		t.Errorf("Broadcasters = %v, want [0]", res.Broadcasters)
	}
	if res.Goal != Broadcast || res.N != 6 {
		t.Errorf("Result metadata wrong: %+v", res)
	}
}

func TestRunGossipStaticPath(t *testing.T) {
	// Static identity path: node n−1's value never travels anywhere, so
	// gossip cannot complete; Run must hit the budget.
	_, err := Run(4, staticAdversary{tree.IdentityPath(4)}, Gossip, WithMaxRounds(50))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestRunGossipCompletes(t *testing.T) {
	// Alternating path directions completes gossip quickly.
	alt := adversaryFunc(func(v View) *tree.Tree {
		if v.Round()%2 == 0 {
			return tree.IdentityPath(v.N())
		}
		order := make([]int, v.N())
		for i := range order {
			order[i] = v.N() - 1 - i
		}
		return tree.MustPath(order)
	})
	res, err := Run(5, alt, Gossip)
	if err != nil {
		t.Fatalf("Run error: %v", err)
	}
	if !res.Completed {
		t.Error("gossip did not complete")
	}
	if res.FinalStats.MinCol != 5 {
		t.Errorf("gossip finished with MinCol %d, want 5", res.FinalStats.MinCol)
	}
}

// adversaryFunc adapts a function to Adversary.
type adversaryFunc func(View) *tree.Tree

func (f adversaryFunc) Next(v View) *tree.Tree { return f(v) }

func TestRunBadTree(t *testing.T) {
	_, err := Run(5, badAdversary{}, Broadcast)
	if !errors.Is(err, ErrBadTree) {
		t.Fatalf("err = %v, want ErrBadTree", err)
	}
}

func TestRunMaxRounds(t *testing.T) {
	// A root-1 path on n=2 repeated forever: node 1 broadcasts in one
	// round, so to force a stall use gossip (value of 0 never reaches 1).
	order := []int{1, 0}
	res, err := Run(2, staticAdversary{tree.MustPath(order)}, Gossip, WithMaxRounds(7))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if res.Completed || res.Rounds != 7 {
		t.Errorf("partial result = %+v, want 7 incomplete rounds", res)
	}
}

func TestRunObserver(t *testing.T) {
	var rounds []int
	_, err := Run(4, staticAdversary{tree.IdentityPath(4)}, Broadcast,
		WithObserver(func(r int, tr *tree.Tree, e *Engine) {
			rounds = append(rounds, r)
			if tr == nil || e == nil {
				t.Error("observer got nil arguments")
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 {
		t.Fatalf("observer called %d times, want 3", len(rounds))
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Errorf("observer round %d = %d", i, r)
		}
	}
}

func TestBroadcastTime(t *testing.T) {
	got, err := BroadcastTime(8, staticAdversary{tree.IdentityPath(8)})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("BroadcastTime = %d, want 7", got)
	}
}

func TestRunN1(t *testing.T) {
	res, err := Run(1, staticAdversary{tree.MustNew([]int{0})}, Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 0 {
		t.Errorf("n=1 result = %+v, want immediate completion", res)
	}
}

func TestGoalString(t *testing.T) {
	if Broadcast.String() != "broadcast" || Gossip.String() != "gossip" {
		t.Error("Goal.String() wrong")
	}
	if Goal(9).String() == "" {
		t.Error("unknown goal has empty string")
	}
}

func TestDeepestFirstOrderProperty(t *testing.T) {
	// Every vertex must appear before its parent in the application order
	// Step uses (the engine's tree.DepthOrder scratch).
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(30)
		e := NewEngine(n)
		tr := tree.Random(n, src)
		order := e.ord.Fill(tr.Parents())
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < n; v++ {
			if p := tr.Parent(v); p != v && pos[v] > pos[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineStep(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(benchSize(n), func(b *testing.B) {
			src := rng.New(1)
			e := NewEngine(n)
			trees := make([]*tree.Tree, 64)
			for i := range trees {
				trees[i] = tree.Random(n, src)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step(trees[i%len(trees)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}

func BenchmarkMatrixEngineStep(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(benchSize(n), func(b *testing.B) {
			src := rng.New(1)
			e := NewMatrixEngine(n)
			trees := make([]*tree.Tree, 64)
			for i := range trees {
				trees[i] = tree.Random(n, src)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step(trees[i%len(trees)])
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}

func benchSize(n int) string {
	switch n {
	case 64:
		return "n64"
	case 256:
		return "n256"
	default:
		return "n1024"
	}
}
