package core

import (
	"sort"
	"testing"

	"dyntreecast/internal/procs"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// This file is the cross-engine differential harness: for seeded random
// trees and adversary schedules at n ≤ 8 it drives the three
// implementations of the model — the column-oriented Engine, the
// row-oriented MatrixEngine, and internal/procs' operational
// message-passing system — through the same schedule in lockstep and
// pins that they report identical knowledge matrices and identical
// broadcast/gossip completion rounds. Any divergence means one of the
// engines (or the model itself) is wrong; the harness is also the seam
// future engines plug into. Race-clean by construction (procs is real
// goroutines + channels), so CI runs this package under -race.

// scheduleGen produces the round r+1 tree of a schedule. Adaptive
// generators may consult the engine view v (all engines hold identical
// state in lockstep, so consulting one is consulting all).
type scheduleGen struct {
	name string
	next func(v View, src *rng.Source, n int) *tree.Tree
}

func scheduleGens() []scheduleGen {
	return []scheduleGen{
		{"random-tree", func(_ View, src *rng.Source, n int) *tree.Tree {
			return tree.Random(n, src)
		}},
		{"random-path", func(_ View, src *rng.Source, n int) *tree.Tree {
			return tree.RandomPath(n, src)
		}},
		{"random-star", func(_ View, src *rng.Source, n int) *tree.Tree {
			t, err := tree.Star(n, src.Intn(n))
			if err != nil {
				panic(err)
			}
			return t
		}},
		{"identity-path", func(_ View, _ *rng.Source, n int) *tree.Tree {
			// Deterministic staller: broadcast in n−1 rounds, gossip never
			// (vertex 0 hears nobody), exercising the budget-capped path.
			return tree.IdentityPath(n)
		}},
		{"ascending-heard-path", func(v View, _ *rng.Source, n int) *tree.Tree {
			// Adaptive stalling heuristic, reimplemented against the View
			// so the harness needs no adversary-package import: the path
			// ordered by ascending heard-set size (ties by id).
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool {
				return v.Heard(order[a]).Count() < v.Heard(order[b]).Count()
			})
			t, err := tree.Path(order)
			if err != nil {
				panic(err)
			}
			return t
		}},
	}
}

// firstRounds records when each goal first held, -1 while it has not.
type firstRounds struct{ broadcast, gossip int }

func TestEnginesAgreeOnRandomSchedules(t *testing.T) {
	for _, gen := range scheduleGens() {
		for n := 2; n <= 8; n++ {
			for seed := uint64(1); seed <= 3; seed++ {
				src := rng.New(seed*1000 + uint64(n))
				eng := NewEngine(n)
				mat := NewMatrixEngine(n)
				sim := procs.New(n)

				budget := n*n + 1
				got := map[string]*firstRounds{
					"engine": {-1, -1}, "matrix": {-1, -1}, "procs": {-1, -1},
				}
				for round := 1; round <= budget; round++ {
					tr := gen.next(eng, src, n)
					eng.Step(tr)
					mat.Step(tr)
					sim.Step(tr)

					em, mm, sm := eng.Matrix(), mat.Matrix(), sim.Matrix()
					if !em.Equal(mm) {
						t.Fatalf("%s n=%d seed=%d round %d: Engine and MatrixEngine matrices diverge:\n%v\nvs\n%v",
							gen.name, n, seed, round, em, mm)
					}
					if !em.Equal(sm) {
						t.Fatalf("%s n=%d seed=%d round %d: Engine and procs matrices diverge:\n%v\nvs\n%v",
							gen.name, n, seed, round, em, sm)
					}

					record := func(key string, bdone, gdone bool) {
						fr := got[key]
						if fr.broadcast < 0 && bdone {
							fr.broadcast = round
						}
						if fr.gossip < 0 && gdone {
							fr.gossip = round
						}
					}
					record("engine", eng.BroadcastDone(), eng.GossipDone())
					record("matrix", mat.BroadcastDone(), mat.GossipDone())
					record("procs", sim.BroadcastDone(), sim.GossipDone())
					if got["engine"].gossip >= 0 {
						break
					}
				}
				sim.Close()

				for _, key := range []string{"matrix", "procs"} {
					if *got[key] != *got["engine"] {
						t.Errorf("%s n=%d seed=%d: %s reports (broadcast=%d, gossip=%d), engine (broadcast=%d, gossip=%d)",
							gen.name, n, seed, key,
							got[key].broadcast, got[key].gossip,
							got["engine"].broadcast, got["engine"].gossip)
					}
				}
				// Random schedules must complete both goals within the §2
				// trivial budget; the deterministic stallers legitimately
				// time out on gossip but must still broadcast.
				if got["engine"].broadcast < 0 {
					t.Errorf("%s n=%d seed=%d: broadcast incomplete after %d rounds", gen.name, n, seed, budget)
				}
			}
		}
	}
}
