package dyntreecast_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dyntreecast"
	"dyntreecast/internal/server"
)

func TestQuickstartFlow(t *testing.T) {
	rounds, err := dyntreecast.BroadcastTime(16,
		dyntreecast.RandomAdversary(dyntreecast.NewRand(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyntreecast.CheckSandwich(16, rounds); err != nil {
		t.Error(err)
	}
}

func TestStaticPathViaPublicAPI(t *testing.T) {
	for _, n := range []int{2, 9, 40} {
		rounds, err := dyntreecast.BroadcastTime(n,
			dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(n)))
		if err != nil {
			t.Fatal(err)
		}
		if rounds != n-1 {
			t.Errorf("n=%d: t* = %d, want %d", n, rounds, n-1)
		}
	}
}

func TestStarCompletesInOneRound(t *testing.T) {
	star, err := dyntreecast.StarTree(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := dyntreecast.BroadcastTime(9, dyntreecast.StaticAdversary(star))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Errorf("star t* = %d, want 1", rounds)
	}
}

func TestTreeConstructorsValidate(t *testing.T) {
	if _, err := dyntreecast.NewTree([]int{1, 0}); !errors.Is(err, dyntreecast.ErrInvalidTree) {
		t.Errorf("rootless tree: err = %v", err)
	}
	if _, err := dyntreecast.PathTree([]int{0, 0}); !errors.Is(err, dyntreecast.ErrInvalidTree) {
		t.Errorf("non-permutation path: err = %v", err)
	}
	if _, err := dyntreecast.StarTree(3, 9); !errors.Is(err, dyntreecast.ErrInvalidTree) {
		t.Errorf("bad star root: err = %v", err)
	}
}

func TestScheduleAdversary(t *testing.T) {
	n := 5
	sched := []*dyntreecast.Tree{
		dyntreecast.IdentityPathTree(n),
		dyntreecast.IdentityPathTree(n),
	}
	rounds, err := dyntreecast.BroadcastTime(n, dyntreecast.ScheduleAdversary(sched))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != n-1 {
		t.Errorf("t* = %d, want %d", rounds, n-1)
	}
}

func TestRunGoalAndOptions(t *testing.T) {
	res, err := dyntreecast.Run(4,
		dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(4)),
		dyntreecast.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 3 {
		t.Errorf("Result = %+v", res)
	}

	var observed int
	_, err = dyntreecast.Run(4,
		dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(4)),
		dyntreecast.Broadcast,
		dyntreecast.WithObserver(func(round int, tr *dyntreecast.Tree, e *dyntreecast.Engine) {
			observed++
		}))
	if err != nil {
		t.Fatal(err)
	}
	if observed != 3 {
		t.Errorf("observer fired %d times, want 3", observed)
	}

	_, err = dyntreecast.Run(4,
		dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(4)),
		dyntreecast.Gossip,
		dyntreecast.WithMaxRounds(10))
	if !errors.Is(err, dyntreecast.ErrMaxRounds) {
		t.Errorf("gossip under static path: err = %v, want ErrMaxRounds", err)
	}
}

func TestRestrictedAdversaries(t *testing.T) {
	r := dyntreecast.NewRand(3)
	rounds, err := dyntreecast.BroadcastTime(12, dyntreecast.KLeavesAdversary(3, r))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyntreecast.CheckSandwich(12, rounds); err != nil {
		t.Error(err)
	}
	rounds, err = dyntreecast.BroadcastTime(12, dyntreecast.KInnerAdversary(4, r))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyntreecast.CheckSandwich(12, rounds); err != nil {
		t.Error(err)
	}
}

func TestHeuristicAdversaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		adv  dyntreecast.Adversary
	}{
		{"ascending", dyntreecast.AscendingPathAdversary()},
		{"block-leader", dyntreecast.BlockLeaderAdversary()},
		{"min-gain", dyntreecast.MinGainAdversary()},
	} {
		rounds, err := dyntreecast.BroadcastTime(10, tc.adv)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := dyntreecast.CheckSandwich(10, rounds); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestSearchScheduleCertifiesItsValue(t *testing.T) {
	adv, rounds := dyntreecast.SearchSchedule(6, 8, 1)
	got, err := dyntreecast.BroadcastTime(6, adv)
	if err != nil {
		t.Fatal(err)
	}
	if got != rounds {
		t.Errorf("schedule replays to %d rounds, search claimed %d", got, rounds)
	}
}

func TestExactSolverPublicAPI(t *testing.T) {
	s, err := dyntreecast.NewExactSolver(4)
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Value(); v != 4 {
		t.Errorf("t*(T4) = %d, want 4", v)
	}
	rounds, err := dyntreecast.BroadcastTime(4, dyntreecast.OptimalAdversary(s))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 4 {
		t.Errorf("optimal adversary achieved %d, want 4", rounds)
	}
	if _, err := dyntreecast.NewExactSolver(7); err == nil {
		t.Error("NewExactSolver(7) accepted")
	}
}

func TestBoundFunctions(t *testing.T) {
	if got := dyntreecast.LowerBound(10); got != 13 {
		t.Errorf("LowerBound(10) = %d", got)
	}
	if got := dyntreecast.UpperBound(10); got != 24 {
		t.Errorf("UpperBound(10) = %d", got)
	}
	if got := dyntreecast.TrivialBound(10); got != 100 {
		t.Errorf("TrivialBound(10) = %d", got)
	}
	if dyntreecast.NLogNBound(16) != 64 || dyntreecast.NLogLogNBound(16) != 64 {
		t.Error("log bound curves wrong at n=16")
	}
	if err := dyntreecast.CheckSandwich(10, 25); err == nil {
		t.Error("CheckSandwich accepted a bound violation")
	}
}

func TestManualEngineStepping(t *testing.T) {
	e := dyntreecast.NewEngine(4)
	e.Step(dyntreecast.IdentityPathTree(4))
	if e.Round() != 1 {
		t.Errorf("Round = %d", e.Round())
	}
	if e.BroadcastDone() {
		t.Error("broadcast done after one path round on n=4")
	}
	star, _ := dyntreecast.StarTree(4, 0)
	e.Step(star)
	if !e.BroadcastDone() {
		t.Error("broadcast not done after star round")
	}
}

func TestFloodMinPublicAPI(t *testing.T) {
	res, err := dyntreecast.FloodMin([]int{9, 2, 5},
		dyntreecast.RandomAdversary(dyntreecast.NewRand(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Decision != 2 {
		t.Errorf("FloodMin result: %+v", res)
	}
	_, err = dyntreecast.FloodMin([]int{9, 2, 5}, dyntreecast.StallerAdversary(),
		dyntreecast.WithMaxRounds(50))
	if !errors.Is(err, dyntreecast.ErrMaxRounds) {
		t.Errorf("staller FloodMin err = %v, want ErrMaxRounds", err)
	}
}

func TestNonsplitGamePublicAPI(t *testing.T) {
	r := dyntreecast.NewRand(6)
	rounds, err := dyntreecast.NonsplitBroadcastTime(32, dyntreecast.RandomCoverAdversary(r), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The nonsplit game completes in far fewer than linear rounds.
	if rounds < 1 || rounds > 10 {
		t.Errorf("nonsplit t* = %d, expected a handful of rounds", rounds)
	}
	lazy, err := dyntreecast.NonsplitBroadcastTime(32, dyntreecast.LazyCoverAdversary(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lazy < rounds {
		t.Errorf("lazy cover (%d) below random cover (%d)", lazy, rounds)
	}
}

func TestGossipPublicAPI(t *testing.T) {
	b, g, err := dyntreecast.BroadcastAndGossipTimes(8,
		dyntreecast.RandomAdversary(dyntreecast.NewRand(8)))
	if err != nil {
		t.Fatal(err)
	}
	if b < 1 || g < b {
		t.Errorf("broadcast %d, gossip %d", b, g)
	}
	if _, err := dyntreecast.GossipTime(4, dyntreecast.StallerAdversary(),
		dyntreecast.WithMaxRounds(20)); !errors.Is(err, dyntreecast.ErrMaxRounds) {
		t.Errorf("staller gossip err = %v", err)
	}
}

func TestNonsplitProductPublicAPI(t *testing.T) {
	r := dyntreecast.NewRand(9)
	n := 7
	trees := make([]*dyntreecast.Tree, n-1)
	for i := range trees {
		trees[i] = dyntreecast.RandomTree(n, r)
	}
	if !dyntreecast.ProductOfTreesIsNonsplit(trees) {
		t.Error("product of n-1 trees not nonsplit")
	}
	if rad := dyntreecast.ProductOfTreesRadius(trees); rad < 0 {
		t.Errorf("radius = %d", rad)
	}
	if dyntreecast.ProductOfTreesIsNonsplit(trees[:1]) {
		t.Error("a single random tree on 7 vertices should rarely be nonsplit (seed-pinned)")
	}
}

func TestDeepSearchSchedulePublicAPI(t *testing.T) {
	adv, rounds, err := dyntreecast.DeepSearchSchedule(4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 4 {
		t.Errorf("certified %d rounds at n=4, want the exact value 4", rounds)
	}
	got, err := dyntreecast.BroadcastTime(4, adv)
	if err != nil {
		t.Fatal(err)
	}
	if got != rounds {
		t.Errorf("replay %d != certified %d", got, rounds)
	}
	if _, _, err := dyntreecast.DeepSearchSchedule(20, 100, 4); err == nil {
		t.Error("n=20 accepted")
	}
}

func TestRunCampaignCacheOption(t *testing.T) {
	spec := dyntreecast.Campaign{
		Adversaries: []string{"random-tree", "random-path"},
		Ns:          []int{8, 16},
		Trials:      4,
		Seed:        6,
	}
	store := dyntreecast.NewMemoryCampaignCache()
	cold, err := dyntreecast.RunCampaign(context.Background(), spec, 2,
		dyntreecast.CampaignWithCache(store))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := dyntreecast.RunCampaign(context.Background(), spec, 2,
		dyntreecast.CampaignWithCache(store))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.Jobs || warm.Executed != 0 {
		t.Errorf("warm run hits/executed = %d/%d, want %d/0", warm.CacheHits, warm.Executed, warm.Jobs)
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Error("cached campaign served different aggregates")
	}
}

func TestResumeCampaignRequiresCheckpoint(t *testing.T) {
	spec := dyntreecast.Campaign{Adversaries: []string{"random-tree"}, Ns: []int{8}, Trials: 2, Seed: 1}
	missing := filepath.Join(t.TempDir(), "none.ckpt")
	if _, err := dyntreecast.ResumeCampaign(context.Background(), spec, missing, 1); err == nil {
		t.Error("ResumeCampaign succeeded without a checkpoint")
	}
}

// stridingStar is the custom adversary of the acceptance test below: the
// star rooted at (round·stride) mod n. Implemented entirely against the
// public facade, as downstream code would.
type stridingStar struct{ stride int }

func (s stridingStar) Next(v dyntreecast.View) *dyntreecast.Tree {
	star, err := dyntreecast.StarTree(v.N(), (v.Round()*s.stride)%v.N())
	if err != nil {
		return nil
	}
	return star
}

// TestRegisterAdversaryFullStack is the scenario-API acceptance pass: a
// custom parameterized family registered through the public
// RegisterAdversary runs through a full campaign with cache and
// checkpoint, and round-trips through the campaignd HTTP service — where
// a legacy-form submission of a built-in grid serves an artifact
// byte-identical to its scenario-form equivalent.
func TestRegisterAdversaryFullStack(t *testing.T) {
	// A custom oblivious family: round-robin stars whose root advances by
	// the "stride" parameter each round. Broadcast completes in 1 round
	// (any star completes immediately), keeping the expected stats pinned.
	err := dyntreecast.RegisterAdversary(dyntreecast.AdversaryFamily{
		Name: "acceptance-striding-star",
		Doc:  "star whose root advances by stride each round",
		Params: []dyntreecast.AdversaryParam{
			{Name: "stride", Kind: dyntreecast.IntParam, Default: 1, Doc: "root advance per round"},
		},
		New: func(_ int, p dyntreecast.AdversaryParams, _ *dyntreecast.Rand) (dyntreecast.Adversary, error) {
			stride := p.Int("stride")
			if stride < 1 {
				return nil, fmt.Errorf("stride must be >= 1, got %d", stride)
			}
			return stridingStar{stride: stride}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	spec := dyntreecast.Campaign{
		Name: "acceptance",
		Scenarios: []dyntreecast.Scenario{
			{Adversary: "acceptance-striding-star", Params: map[string]any{"stride": []any{1, 2}}},
		},
		Ns:     []int{6, 8},
		Trials: 3,
		Seed:   5,
	}
	ctx := context.Background()
	dir := t.TempDir()
	cacheStore, err := dyntreecast.NewDirCampaignCache(filepath.Join(dir, "cells"))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "acceptance.ckpt")

	first, err := dyntreecast.RunCampaign(ctx, spec, 2,
		dyntreecast.CampaignWithCache(cacheStore), dyntreecast.CampaignWithCheckpoint(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if first.Failed != 0 || first.Jobs != 2*2*3 {
		t.Fatalf("custom campaign wrong: %+v errors=%v", first, first.Errors)
	}
	for _, cell := range first.Cells {
		if cell.Mean != 1 {
			t.Errorf("star cell %s mean = %v, want 1", cell.Cell, cell.Mean)
		}
	}

	// Resume from the completed checkpoint: every job reused, same cells.
	resumed, err := dyntreecast.ResumeCampaign(ctx, spec, ckpt, 1, dyntreecast.CampaignWithCache(cacheStore))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Reused != resumed.Jobs {
		t.Errorf("resume reused %d/%d jobs", resumed.Reused, resumed.Jobs)
	}
	if !reflect.DeepEqual(first.Cells, resumed.Cells) {
		t.Errorf("resumed cells differ:\n%+v\nvs\n%+v", first.Cells, resumed.Cells)
	}

	// campaignd round-trip: the same custom scenario through HTTP, served
	// from the shared cache, must report the same aggregates.
	ts := httptest.NewServer(server.New(server.Options{Workers: 2}))
	defer ts.Close()
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	served := submitAndWait(t, ts, string(specJSON))
	if !reflect.DeepEqual(served.Cells, first.Cells) {
		t.Errorf("campaignd aggregates differ from local run:\n%+v\nvs\n%+v", served.Cells, first.Cells)
	}

	// Legacy-form vs scenario-form submissions of one built-in grid:
	// byte-identical artifacts (modulo the submission-counter id).
	legacy := `{"adversaries":["k-inner"],"ks":[2],"ns":[8],"trials":3,"seed":9}`
	scenario := `{"version":2,"scenarios":[{"adversary":"k-inner","params":{"k":2}}],"ns":[8],"trials":3,"seed":9}`
	a := submitAndWait(t, ts, legacy)
	b := submitAndWait(t, ts, scenario)
	a.ID, b.ID = "", ""
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("legacy and scenario campaignd artifacts differ:\n%s\nvs\n%s", aj, bj)
	}
}

// serverStatus mirrors campaignd's GET /campaigns/{id} document.
type serverStatus struct {
	ID        string                     `json:"id"`
	Status    string                     `json:"status"`
	Jobs      int                        `json:"jobs"`
	Completed int                        `json:"completed"`
	Failed    int                        `json:"failed"`
	Error     string                     `json:"error,omitempty"`
	Cells     []dyntreecast.CampaignCell `json:"cells,omitempty"`
}

func submitAndWait(t *testing.T, ts *httptest.Server, body string) serverStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := http.Get(ts.URL + "/campaigns/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v serverStatus
		err = json.NewDecoder(st.Body).Decode(&v)
		st.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != "running" {
			if v.Status != "done" {
				t.Fatalf("campaign %s finished %q: %s", sub.ID, v.Status, v.Error)
			}
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", sub.ID)
	return serverStatus{}
}

// TestCampaignWithCluster drives the distributed fabric through the root
// facade: a coordinator served over HTTP, one in-process worker joined
// with RunClusterWorker, and an outcome identical to a local run.
func TestCampaignWithCluster(t *testing.T) {
	clusterFacadeRoundTrip(t, dyntreecast.NewClusterCoordinator())
}

// TestCampaignWithShardedCluster is the same round trip with cells split
// into 3-trial lease shards (4 trials per cell, so shards are uneven);
// the artifact must not move by a byte.
func TestCampaignWithShardedCluster(t *testing.T) {
	clusterFacadeRoundTrip(t, dyntreecast.NewShardedClusterCoordinator(3))
}

func clusterFacadeRoundTrip(t *testing.T, coord *dyntreecast.ClusterCoordinator) {
	t.Helper()
	spec := dyntreecast.Campaign{
		Adversaries: []string{"random-tree", "static-path"},
		Ns:          []int{8, 12},
		Trials:      4,
		Seed:        11,
	}
	want, err := dyntreecast.RunCampaign(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- dyntreecast.RunClusterWorker(ctx, ts.URL) }()
	defer func() {
		cancel()
		if err := <-workerDone; err != nil {
			t.Errorf("RunClusterWorker: %v", err)
		}
	}()

	got, err := dyntreecast.RunCampaign(context.Background(), spec, 2,
		dyntreecast.CampaignWithCluster(coord))
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, gotJSON bytes.Buffer
	if err := want.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if wantJSON.String() != gotJSON.String() {
		t.Errorf("clustered campaign artifact differs from local run:\n%s\nvs\n%s", gotJSON.String(), wantJSON.String())
	}
}
